//! The unified offload-backend layer.
//!
//! One [`OffloadBackend`] trait abstracts *where* a data-movement operation
//! runs: on the calling core ([`CpuBackend`], wrapping the runtime's shared
//! [`SwCost`](dsa_ops::swcost::SwCost) model), on one of the platform's DSA
//! instances ([`DsaBackend`], which owns a device *pool* with selection
//! policies so Fig. 10's multi-instance scaling is a first-class runtime
//! capability), or on the previous-generation CBDMA engine
//! ([`CbdmaBackend`], §2/§4.2 baseline). Workloads that used to hand-roll
//! private `Cpu|Dsa` enums now share [`Engine`]; the
//! [`Dispatcher`](crate::dispatch::Dispatcher) chooses between backends per
//! call using each backend's [`estimate`](OffloadBackend::estimate).

use crate::error::DsaError;
use crate::job::{Job, DESC_PREPARE};
use crate::runtime::DsaRuntime;
use crate::submit::SubmitMethod;
use dsa_device::cbdma::CbdmaDevice;
use dsa_device::config::WqMode;
use dsa_device::descriptor::Status;
use dsa_device::device::WqId;
use dsa_device::timing::CbdmaTiming;
use dsa_mem::buffer::Location;
use dsa_mem::memory::BufferHandle;
use dsa_ops::crc32::Crc32c;
use dsa_ops::OpKind;
use dsa_sim::time::{transfer_time_mgbps, SimDuration, SimTime};

/// Where a workload's bulk operations run — the shared replacement for the
/// per-workload engine enums that earlier revisions carried.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Engine {
    /// Software on the calling core (the paper's one-core baseline).
    Cpu,
    /// A DSA instance.
    Dsa {
        /// Device index within the runtime.
        device: usize,
        /// WQ index within the device.
        wq: usize,
    },
}

impl Engine {
    /// The first DSA instance, WQ 0 — the common single-device setup.
    pub const fn dsa() -> Engine {
        Engine::Dsa { device: 0, wq: 0 }
    }

    /// True when operations leave the core.
    pub const fn is_offloaded(&self) -> bool {
        matches!(self, Engine::Dsa { .. })
    }
}

/// One operation handed to a backend.
#[derive(Clone, Copy, Debug)]
pub struct OffloadRequest {
    /// The operation.
    pub op: OpKind,
    /// Source operand (same handle as `dst` for single-operand ops).
    pub src: BufferHandle,
    /// Destination operand.
    pub dst: BufferHandle,
    /// 8-byte fill/compare pattern operand.
    pub pattern: u64,
    /// G3 hint: the destination is consumed soon — steer writes into the
    /// LLC (DSA `CACHE_CONTROL`).
    pub cache_control: bool,
}

impl OffloadRequest {
    /// A copy from `src` to `dst`.
    pub fn memcpy(src: &BufferHandle, dst: &BufferHandle) -> OffloadRequest {
        OffloadRequest {
            op: OpKind::Memcpy,
            src: *src,
            dst: *dst,
            pattern: 0,
            cache_control: false,
        }
    }

    /// A fill of `dst` with a repeated byte.
    pub fn memset(dst: &BufferHandle, byte: u8) -> OffloadRequest {
        OffloadRequest {
            op: OpKind::Fill,
            src: *dst,
            dst: *dst,
            pattern: u64::from_le_bytes([byte; 8]),
            cache_control: false,
        }
    }

    /// A byte-compare of two buffers.
    pub fn memcmp(a: &BufferHandle, b: &BufferHandle) -> OffloadRequest {
        OffloadRequest { op: OpKind::Compare, src: *a, dst: *b, pattern: 0, cache_control: false }
    }

    /// A CRC32-C over `src`.
    pub fn crc32(src: &BufferHandle) -> OffloadRequest {
        OffloadRequest { op: OpKind::Crc32, src: *src, dst: *src, pattern: 0, cache_control: false }
    }

    /// Sets the G3 cache-control hint.
    pub fn cache_control(mut self, on: bool) -> OffloadRequest {
        self.cache_control = on;
        self
    }

    /// Payload size the operation moves/scans.
    pub fn bytes(&self) -> u64 {
        match self.op {
            OpKind::Fill | OpKind::NtFill => self.dst.len(),
            OpKind::Memcpy | OpKind::Compare => self.src.len().min(self.dst.len()),
            _ => self.src.len(),
        }
    }
}

/// Outcome of a synchronous backend run.
#[derive(Clone, Copy, Debug)]
pub struct Completion {
    /// Wall-clock time from call to completion.
    pub elapsed: SimDuration,
    /// Completion status (page faults and compare mismatches included).
    pub status: Status,
    /// Operation result operand (CRC value, mismatch offset, …).
    pub result: u64,
}

/// An in-flight asynchronous operation.
#[derive(Clone, Copy, Debug)]
pub struct Ticket {
    completion: SimTime,
    bytes: u64,
}

impl Ticket {
    pub(crate) fn from_parts(completion: SimTime, bytes: u64) -> Ticket {
        Ticket { completion, bytes }
    }

    /// When the operation's completion record becomes visible.
    pub fn completion_time(&self) -> SimTime {
        self.completion
    }

    /// Payload bytes in flight under this ticket.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Whether the operation has completed by `now`.
    pub fn is_complete(&self, now: SimTime) -> bool {
        self.completion <= now
    }
}

/// An execution target for data-movement operations.
pub trait OffloadBackend {
    /// Short backend name for telemetry labels and reports.
    fn name(&self) -> &'static str;

    /// Predicted wall-clock cost of running `op` over `bytes` from `src`
    /// to `dst` *right now*, including queueing on currently busy backend
    /// resources. Does not mutate any state.
    fn estimate(
        &self,
        rt: &DsaRuntime,
        op: OpKind,
        bytes: u64,
        src: Location,
        dst: Location,
    ) -> SimDuration;

    /// Synchronous execution: performs the work functionally, advances the
    /// clock past completion, and reports the outcome.
    ///
    /// # Errors
    ///
    /// Propagates submission failures ([`DsaError`]).
    fn run(&mut self, rt: &mut DsaRuntime, req: &OffloadRequest) -> Result<Completion, DsaError>;

    /// Asynchronous submission: the clock advances past the *core-side*
    /// submission cost only; the returned ticket tracks completion.
    ///
    /// # Errors
    ///
    /// Propagates submission failures ([`DsaError`]).
    fn submit(&mut self, rt: &mut DsaRuntime, req: &OffloadRequest) -> Result<Ticket, DsaError>;

    /// Waits for `ticket`, advancing the clock to its completion. Returns
    /// the time the core spent blocked.
    fn wait(&mut self, rt: &mut DsaRuntime, ticket: Ticket) -> SimDuration {
        let idle = ticket.completion_time().saturating_duration_since(rt.now());
        rt.advance_to(ticket.completion_time());
        idle
    }
}

/// Performs `req` in software against the runtime's shared cost model —
/// the common fallback path for every backend.
fn cpu_run(rt: &mut DsaRuntime, req: &OffloadRequest) -> Completion {
    let elapsed = rt.cpu_op(req.op, &req.src, &req.dst);
    let (status, result) = match req.op {
        OpKind::Fill | OpKind::NtFill => {
            // `cpu_op` fills with zero; honour the requested pattern.
            let pattern = req.pattern.to_le_bytes();
            if let Ok(b) = rt.memory_mut().read_mut(req.dst.addr(), req.dst.len()) {
                for (i, byte) in b.iter_mut().enumerate() {
                    *byte = pattern[i % 8];
                }
            }
            (Status::Success, 0)
        }
        OpKind::Compare => {
            let a = rt.read(&req.src).unwrap_or(&[]).to_vec();
            let b = rt.read(&req.dst).unwrap_or(&[]);
            match dsa_ops::memops::compare(&a, b) {
                Some(off) => (Status::CompareMismatch, off as u64),
                None => (Status::Success, 0),
            }
        }
        OpKind::Crc32 => {
            let crc = Crc32c::checksum(rt.read(&req.src).unwrap_or(&[]));
            (Status::Success, u64::from(crc))
        }
        _ => (Status::Success, 0),
    };
    Completion { elapsed, status, result }
}

/// The single-core software backend.
///
/// All cost lookups route through [`DsaRuntime::swcost`] — one shared
/// `SwCost` per runtime, never a per-workload copy.
#[derive(Clone, Copy, Debug, Default)]
pub struct CpuBackend;

impl OffloadBackend for CpuBackend {
    fn name(&self) -> &'static str {
        "cpu"
    }

    fn estimate(
        &self,
        rt: &DsaRuntime,
        op: OpKind,
        bytes: u64,
        src: Location,
        dst: Location,
    ) -> SimDuration {
        rt.cpu_time(op, bytes, src, dst)
    }

    fn run(&mut self, rt: &mut DsaRuntime, req: &OffloadRequest) -> Result<Completion, DsaError> {
        Ok(cpu_run(rt, req))
    }

    fn submit(&mut self, rt: &mut DsaRuntime, req: &OffloadRequest) -> Result<Ticket, DsaError> {
        // The core *is* the backend: the work happens inline.
        let bytes = req.bytes();
        cpu_run(rt, req);
        Ok(Ticket { completion: rt.now(), bytes })
    }
}

/// Device selection policy for a [`DsaBackend`] pool (Fig. 10:
/// multi-instance scaling).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PoolPolicy {
    /// Rotate through the pool regardless of state.
    RoundRobin,
    /// Pick the instance with the fewest in-flight descriptors (engine
    /// availability breaks ties).
    LeastLoaded,
    /// Prefer instances on the destination's socket, then least-loaded
    /// among them (UPI-crossing writes are the expensive direction).
    NumaLocal,
}

/// A pool of DSA instances behind one backend.
#[derive(Clone, Debug)]
pub struct DsaBackend {
    pool: Vec<usize>,
    wq: usize,
    policy: PoolPolicy,
    cursor: usize,
}

impl Default for DsaBackend {
    fn default() -> Self {
        DsaBackend::new()
    }
}

impl DsaBackend {
    /// A backend pinned to device 0, WQ 0.
    pub fn new() -> DsaBackend {
        DsaBackend { pool: vec![0], wq: 0, policy: PoolPolicy::RoundRobin, cursor: 0 }
    }

    /// A backend pooling every device of `rt`.
    pub fn all_devices(rt: &DsaRuntime) -> DsaBackend {
        DsaBackend::with_pool((0..rt.device_count()).collect())
    }

    /// A backend over an explicit device pool.
    ///
    /// # Panics
    ///
    /// Panics if `pool` is empty.
    pub fn with_pool(pool: Vec<usize>) -> DsaBackend {
        assert!(!pool.is_empty(), "a DSA backend needs at least one device");
        DsaBackend { pool, wq: 0, policy: PoolPolicy::RoundRobin, cursor: 0 }
    }

    /// Targets WQ `wq` on every pool device.
    pub fn on_wq(mut self, wq: usize) -> DsaBackend {
        self.wq = wq;
        self
    }

    /// Sets the pool selection policy.
    pub fn with_policy(mut self, policy: PoolPolicy) -> DsaBackend {
        self.policy = policy;
        self
    }

    /// The device pool.
    pub fn pool(&self) -> &[usize] {
        &self.pool
    }

    /// The targeted WQ index.
    pub fn wq(&self) -> usize {
        self.wq
    }

    /// The device the current policy would pick for a request writing to
    /// `dst`, without advancing any policy state.
    pub fn peek(&self, rt: &DsaRuntime, dst: Location) -> usize {
        let live: Vec<usize> =
            self.pool.iter().copied().filter(|&d| d < rt.device_count()).collect();
        if live.is_empty() {
            return self.pool[0];
        }
        let least_loaded = |candidates: &[usize]| {
            candidates
                .iter()
                .copied()
                .min_by_key(|&d| {
                    let dev = rt.device(d);
                    (dev.pending_descriptors(rt.now()), dev.engines_next_free())
                })
                .unwrap_or(self.pool[0])
        };
        match self.policy {
            PoolPolicy::RoundRobin => live[self.cursor % live.len()],
            PoolPolicy::LeastLoaded => least_loaded(&live),
            PoolPolicy::NumaLocal => {
                let target = match dst {
                    Location::Dram { socket } => socket,
                    _ => 0,
                };
                let local: Vec<usize> =
                    live.iter().copied().filter(|&d| rt.device(d).socket() == target).collect();
                if local.is_empty() {
                    least_loaded(&live)
                } else {
                    least_loaded(&local)
                }
            }
        }
    }

    /// Chooses a device for a request writing to `dst` and advances the
    /// policy state.
    pub fn select(&mut self, rt: &DsaRuntime, dst: Location) -> usize {
        let pick = self.peek(rt, dst);
        self.cursor = self.cursor.wrapping_add(1);
        pick
    }

    /// Core-side cost of one asynchronous submission to this backend's WQ
    /// (descriptor prepare + portal write; G2's async break-even anchor).
    pub fn submit_cost(&self, rt: &DsaRuntime, dst: Location) -> SimDuration {
        let dev = self.peek(rt, dst).min(rt.device_count().saturating_sub(1));
        let method = match rt.device(dev).wq_mode(WqId(self.wq.min(rt.device(dev).wq_count() - 1)))
        {
            WqMode::Dedicated => SubmitMethod::Movdir64b,
            WqMode::Shared => SubmitMethod::Enqcmd,
        };
        DESC_PREPARE + method.core_cost()
    }

    fn job_for(req: &OffloadRequest) -> Job {
        let job = match req.op {
            OpKind::Fill | OpKind::NtFill => Job::fill(&req.dst, req.pattern),
            OpKind::Compare => Job::compare(&req.src, &req.dst),
            OpKind::ComparePattern => Job::compare_pattern(&req.src, req.pattern),
            OpKind::Crc32 => Job::crc32(&req.src),
            _ => Job::memcpy(&req.src, &req.dst),
        };
        if req.cache_control {
            job.cache_control()
        } else {
            job
        }
    }
}

impl OffloadBackend for DsaBackend {
    fn name(&self) -> &'static str {
        "dsa"
    }

    /// Mirrors the device pipeline for an amortized-descriptor sync job:
    /// prepare + portal write on the core, then accept → dispatch → engine
    /// (pipeline fill + rate-limited streaming) → completion write, plus
    /// queueing for a busy engine. The streaming rate is capped by the
    /// engine, the fabric, and the read-buffer MLP limit for the source
    /// medium (F3); the pipeline fill is the memory round-trip the first
    /// chunk pays before streaming overlaps — it dominates small
    /// transfers and is what puts the sync break-even near 4 KiB.
    fn estimate(
        &self,
        rt: &DsaRuntime,
        op: OpKind,
        bytes: u64,
        src: Location,
        dst: Location,
    ) -> SimDuration {
        let dev_idx = self.peek(rt, dst).min(rt.device_count().saturating_sub(1));
        let dev = rt.device(dev_idx);
        let t = dev.timing();
        let queue = dev.engines_next_free().saturating_duration_since(rt.now());
        let mlp = t.read_mlp_mgbps(rt.memsys().read_latency(src));
        let rate = t.pe_mgbps.min(t.fabric_mgbps).min(mlp);
        // Fills only write; compares/CRCs only read; copies chase writes
        // behind reads chunk by chunk.
        let streamed = transfer_time_mgbps(bytes, rate);
        let fill = match op {
            OpKind::Fill | OpKind::NtFill => rt.memsys().write_latency(dst),
            OpKind::Compare | OpKind::ComparePattern | OpKind::Crc32 => {
                rt.memsys().read_latency(src)
            }
            _ => rt.memsys().read_latency(src) + rt.memsys().write_latency(dst),
        };
        self.submit_cost(rt, dst)
            + queue
            + t.portal_accept
            + t.dispatch
            + t.pe_fixed
            + fill
            + streamed
            + t.completion_write
            + rt.platform().llc_latency
    }

    fn run(&mut self, rt: &mut DsaRuntime, req: &OffloadRequest) -> Result<Completion, DsaError> {
        let device = self.select(rt, location_of(rt, &req.dst));
        let report = Self::job_for(req).on_device(device).on_wq(self.wq).execute(rt)?;
        Ok(Completion {
            elapsed: report.elapsed(),
            status: report.record.status,
            result: report.record.result,
        })
    }

    fn submit(&mut self, rt: &mut DsaRuntime, req: &OffloadRequest) -> Result<Ticket, DsaError> {
        let bytes = req.bytes();
        let device = self.select(rt, location_of(rt, &req.dst));
        let handle = Self::job_for(req).on_device(device).on_wq(self.wq).submit(rt)?;
        Ok(Ticket { completion: handle.completion_time(), bytes })
    }
}

fn location_of(rt: &DsaRuntime, buf: &BufferHandle) -> Location {
    rt.memory().location_of(buf.addr()).unwrap_or(Location::local_dram())
}

/// The Ice Lake CBDMA baseline as a backend.
///
/// CBDMA only copies (no fill/compare/CRC, no batching, no cache control)
/// and requires pinned buffers — the backend pins ranges on first use, the
/// `get_user_pages`-style setup the paper calls an adoption barrier (§2).
/// Non-copy operations fall back to the software path.
#[derive(Debug)]
pub struct CbdmaBackend {
    dev: CbdmaDevice,
    cursor: usize,
    pinned: std::collections::BTreeSet<(u64, u64)>,
}

impl CbdmaBackend {
    /// A CBDMA backend with `channels` channels and ICX timing.
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0`.
    pub fn new(channels: usize) -> CbdmaBackend {
        CbdmaBackend {
            dev: CbdmaDevice::new(0, channels, CbdmaTiming::icx()),
            cursor: 0,
            pinned: std::collections::BTreeSet::new(),
        }
    }

    /// The underlying device model.
    pub fn device(&self) -> &CbdmaDevice {
        &self.dev
    }

    fn ensure_pinned(&mut self, buf: &BufferHandle) {
        if self.pinned.insert((buf.addr(), buf.len())) {
            self.dev.pin(buf.addr(), buf.len());
        }
    }

    fn copy(&mut self, rt: &mut DsaRuntime, req: &OffloadRequest) -> Result<Ticket, DsaError> {
        self.ensure_pinned(&req.src);
        self.ensure_pinned(&req.dst);
        let channel = self.cursor % self.dev.channels();
        self.cursor = self.cursor.wrapping_add(1);
        let bytes = req.bytes();
        let now = rt.now();
        let (memory, memsys) = rt.mem_parts();
        let exec = self.dev.submit_copy(
            memory,
            memsys,
            channel,
            req.src.addr(),
            req.dst.addr(),
            bytes,
            now,
        )?;
        rt.advance_to(exec.submitted);
        Ok(Ticket { completion: exec.completed, bytes })
    }
}

impl OffloadBackend for CbdmaBackend {
    fn name(&self) -> &'static str {
        "cbdma"
    }

    fn estimate(
        &self,
        rt: &DsaRuntime,
        op: OpKind,
        bytes: u64,
        src: Location,
        dst: Location,
    ) -> SimDuration {
        if op != OpKind::Memcpy {
            return rt.cpu_time(op, bytes, src, dst);
        }
        let t = *self.dev.timing();
        let channel = self.cursor % self.dev.channels();
        let queue = self.dev.channel_next_free(channel).saturating_duration_since(rt.now());
        t.doorbell
            + t.ring_fetch
            + queue
            + t.chan_fixed
            + transfer_time_mgbps(bytes, t.chan_mgbps.min(t.fabric_mgbps))
            + t.completion
            + rt.platform().llc_latency
    }

    fn run(&mut self, rt: &mut DsaRuntime, req: &OffloadRequest) -> Result<Completion, DsaError> {
        if req.op != OpKind::Memcpy {
            return Ok(cpu_run(rt, req));
        }
        let start = rt.now();
        let ticket = self.copy(rt, req)?;
        rt.advance_to(ticket.completion_time());
        Ok(Completion {
            elapsed: rt.now().duration_since(start),
            status: Status::Success,
            result: 0,
        })
    }

    fn submit(&mut self, rt: &mut DsaRuntime, req: &OffloadRequest) -> Result<Ticket, DsaError> {
        if req.op != OpKind::Memcpy {
            let bytes = req.bytes();
            cpu_run(rt, req);
            return Ok(Ticket { completion: rt.now(), bytes });
        }
        self.copy(rt, req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::presets;
    use dsa_mem::topology::Platform;

    fn rt_with_devices(n: usize) -> DsaRuntime {
        DsaRuntime::builder(Platform::spr())
            .devices(n, presets::engines_behind_one_dwq(1, 32))
            .build()
    }

    #[test]
    fn cpu_backend_estimate_matches_runtime_swcost() {
        let rt = DsaRuntime::spr_default();
        let cpu = CpuBackend;
        let d = Location::local_dram();
        assert_eq!(
            cpu.estimate(&rt, OpKind::Memcpy, 4096, d, d),
            rt.cpu_time(OpKind::Memcpy, 4096, d, d)
        );
    }

    #[test]
    fn cpu_backend_runs_functionally() {
        let mut rt = DsaRuntime::spr_default();
        let src = rt.alloc(1024, Location::local_dram());
        let dst = rt.alloc(1024, Location::local_dram());
        rt.fill_random(&src);
        let mut cpu = CpuBackend;
        cpu.run(&mut rt, &OffloadRequest::memcpy(&src, &dst)).unwrap();
        assert_eq!(rt.read(&src).unwrap(), rt.read(&dst).unwrap());

        cpu.run(&mut rt, &OffloadRequest::memset(&dst, 0x5A)).unwrap();
        assert!(rt.read(&dst).unwrap().iter().all(|&b| b == 0x5A));

        let c = cpu.run(&mut rt, &OffloadRequest::memcmp(&src, &dst)).unwrap();
        assert_eq!(c.status, Status::CompareMismatch);
    }

    #[test]
    fn dsa_estimate_tracks_measured_sync_latency() {
        // The estimate must stay close enough to a measured execution for
        // break-even decisions to be trustworthy.
        for bytes in [1u64 << 10, 4 << 10, 64 << 10, 1 << 20] {
            let mut rt = DsaRuntime::spr_default();
            let src = rt.alloc(bytes, Location::local_dram());
            let dst = rt.alloc(bytes, Location::local_dram());
            // Warm the ATC: the first execution pays IOMMU walks that
            // steady-state dispatch (what the estimate predicts) does not.
            Job::memcpy(&src, &dst).execute(&mut rt).unwrap();
            let backend = DsaBackend::new();
            let d = Location::local_dram();
            let est = backend.estimate(&rt, OpKind::Memcpy, bytes, d, d).as_ns_f64();
            let measured = Job::memcpy(&src, &dst).execute(&mut rt).unwrap().elapsed().as_ns_f64();
            let ratio = est / measured;
            assert!(
                (0.5..2.0).contains(&ratio),
                "{bytes} B: estimate {est} ns vs measured {measured} ns"
            );
        }
    }

    #[test]
    fn round_robin_rotates_across_pool() {
        let rt = rt_with_devices(3);
        let mut b = DsaBackend::all_devices(&rt);
        let d = Location::local_dram();
        let picks: Vec<usize> = (0..6).map(|_| b.select(&rt, d)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn least_loaded_avoids_busy_device() {
        let mut rt = rt_with_devices(2);
        // Load device 0 with a large sync copy so its engine stays busy.
        let src = rt.alloc(4 << 20, Location::local_dram());
        let dst = rt.alloc(4 << 20, Location::local_dram());
        let handle = Job::memcpy(&src, &dst).on_device(0).submit(&mut rt).unwrap();
        assert!(!handle.is_complete(rt.now()));

        let b = DsaBackend::all_devices(&rt).with_policy(PoolPolicy::LeastLoaded);
        assert_eq!(b.peek(&rt, Location::local_dram()), 1, "busy device 0 must be avoided");

        // Once the transfer drains, device 0 reports no pending work (the
        // policy may still prefer device 1's never-used engines).
        rt.advance_to(handle.completion_time());
        assert_eq!(rt.device(0).pending_descriptors(rt.now()), 0);
    }

    #[test]
    fn numa_local_prefers_destination_socket() {
        // Devices alternate sockets (0, 1, 0, 1) on the two-socket SPR.
        let rt = rt_with_devices(4);
        assert_eq!(rt.device(0).socket(), 0);
        assert_eq!(rt.device(1).socket(), 1);
        let b = DsaBackend::all_devices(&rt).with_policy(PoolPolicy::NumaLocal);
        assert_eq!(rt.device(b.peek(&rt, Location::Dram { socket: 0 })).socket(), 0);
        assert_eq!(rt.device(b.peek(&rt, Location::Dram { socket: 1 })).socket(), 1);
    }

    #[test]
    fn cbdma_backend_copies_and_costs_more_than_dsa() {
        let mut rt = DsaRuntime::spr_default();
        let src = rt.alloc(16 << 10, Location::local_dram());
        let dst = rt.alloc(16 << 10, Location::local_dram());
        rt.fill_random(&src);
        let mut cb = CbdmaBackend::new(4);
        let c = cb.run(&mut rt, &OffloadRequest::memcpy(&src, &dst)).unwrap();
        assert_eq!(rt.read(&src).unwrap(), rt.read(&dst).unwrap());

        let mut rt2 = DsaRuntime::spr_default();
        let src2 = rt2.alloc(16 << 10, Location::local_dram());
        let dst2 = rt2.alloc(16 << 10, Location::local_dram());
        let d2 = Job::memcpy(&src2, &dst2).execute(&mut rt2).unwrap().elapsed();
        assert!(c.elapsed > d2, "CBDMA {:?} should be slower than DSA {:?}", c.elapsed, d2);
    }
}
