//! The crate-wide error type.
//!
//! [`DsaError`] is what every fallible path in the user-facing library
//! returns: job execution, backend dispatch, and the CBDMA baseline all
//! converge here instead of panicking on the hot path. The legacy name
//! [`crate::job::JobError`] is a type alias for it, so existing match
//! sites keep compiling.

use dsa_device::cbdma::CbdmaError;
use dsa_device::device::SubmitError;

/// Errors surfaced by the offload library.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DsaError {
    /// The device rejected the submission (other than a retryable full WQ).
    Submit(SubmitError),
    /// The request referenced a device index that does not exist.
    UnknownDevice {
        /// Offending index.
        device: usize,
    },
    /// The CBDMA baseline rejected the operation (unpinned range, bad
    /// channel, or bad address).
    Cbdma(CbdmaError),
}

impl std::fmt::Display for DsaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DsaError::Submit(e) => write!(f, "submission failed: {e}"),
            DsaError::UnknownDevice { device } => write!(f, "unknown device {device}"),
            DsaError::Cbdma(e) => write!(f, "cbdma: {e}"),
        }
    }
}

impl std::error::Error for DsaError {}

impl From<SubmitError> for DsaError {
    fn from(e: SubmitError) -> DsaError {
        DsaError::Submit(e)
    }
}

impl From<CbdmaError> for DsaError {
    fn from(e: CbdmaError) -> DsaError {
        DsaError::Cbdma(e)
    }
}
