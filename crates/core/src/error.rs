//! The crate-wide error type.
//!
//! [`DsaError`] is what every fallible path in the user-facing library
//! returns: job execution, backend dispatch, the CBDMA baseline, and the
//! multi-tenant service layer all converge here instead of panicking on
//! the hot path. The enum is `#[non_exhaustive]`: downstream matches must
//! carry a wildcard arm, which lets later PRs add failure modes without a
//! breaking release.

use dsa_device::cbdma::CbdmaError;
use dsa_device::config::ConfigError;
use dsa_device::descriptor::DescriptorError;
use dsa_device::device::SubmitError;
use dsa_sim::time::SimTime;

/// Errors surfaced by the offload library.
///
/// Not `Copy`: [`InvalidService`](DsaError::InvalidService) carries an
/// owned reason so builders can name the offending shard/slot/tenant in
/// the message instead of a fixed string.
#[non_exhaustive]
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DsaError {
    /// The device rejected the submission (other than a retryable full WQ).
    Submit(SubmitError),
    /// The request referenced a device index that does not exist.
    UnknownDevice {
        /// Offending index.
        device: usize,
    },
    /// The CBDMA baseline rejected the operation (unpinned range, bad
    /// channel, or bad address).
    Cbdma(CbdmaError),
    /// A bounded retry budget was exhausted without the WQ accepting the
    /// submission (service-layer back-pressure; the caller should shed or
    /// degrade the request).
    RetryExhausted {
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// The job could not complete before its deadline.
    DeadlineExceeded {
        /// The deadline that was missed.
        deadline: SimTime,
    },
    /// A device configuration violated the hardware envelope (surfaced by
    /// [`AccelConfig::build`](crate::config::AccelConfig::build)).
    InvalidConfig(ConfigError),
    /// A compiled op-program instruction produced a descriptor that fails
    /// spec conformance (surfaced at `prepare()` time, before any
    /// submission is attempted).
    Descriptor(DescriptorError),
    /// A service- or fleet-level configuration failed builder validation
    /// (surfaced by `ServiceConfig::builder()` / `FleetConfig::builder()`
    /// in `dsa-svc` before any runtime is constructed).
    InvalidService {
        /// What the builder rejected, naming the offending element.
        reason: String,
    },
}

impl std::fmt::Display for DsaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DsaError::Submit(e) => write!(f, "submission failed: {e}"),
            DsaError::UnknownDevice { device } => write!(f, "unknown device {device}"),
            DsaError::Cbdma(e) => write!(f, "cbdma: {e}"),
            DsaError::RetryExhausted { attempts } => {
                write!(f, "retry budget exhausted after {attempts} attempts")
            }
            DsaError::DeadlineExceeded { deadline } => {
                write!(f, "deadline {deadline} exceeded")
            }
            DsaError::InvalidConfig(e) => write!(f, "invalid device configuration: {e}"),
            DsaError::Descriptor(e) => write!(f, "invalid descriptor: {e}"),
            DsaError::InvalidService { reason } => {
                write!(f, "invalid service configuration: {reason}")
            }
        }
    }
}

impl std::error::Error for DsaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DsaError::Submit(e) => Some(e),
            DsaError::Cbdma(e) => Some(e),
            DsaError::InvalidConfig(e) => Some(e),
            DsaError::Descriptor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SubmitError> for DsaError {
    fn from(e: SubmitError) -> DsaError {
        DsaError::Submit(e)
    }
}

impl From<CbdmaError> for DsaError {
    fn from(e: CbdmaError) -> DsaError {
        DsaError::Cbdma(e)
    }
}

impl From<ConfigError> for DsaError {
    fn from(e: ConfigError) -> DsaError {
        DsaError::InvalidConfig(e)
    }
}

impl From<DescriptorError> for DsaError {
    fn from(e: DescriptorError) -> DsaError {
        DsaError::Descriptor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_names_each_failure_mode() {
        let e = DsaError::RetryExhausted { attempts: 8 };
        assert_eq!(e.to_string(), "retry budget exhausted after 8 attempts");
        let e = DsaError::DeadlineExceeded { deadline: SimTime::from_ns(100) };
        assert!(e.to_string().contains("deadline"));
        assert!(DsaError::UnknownDevice { device: 3 }.to_string().contains('3'));
        let e = DsaError::InvalidService { reason: "zero shards".into() };
        assert_eq!(e.to_string(), "invalid service configuration: zero shards");
    }

    #[test]
    fn source_chains_to_device_errors() {
        let e = DsaError::Submit(SubmitError::UnknownWq { wq: 5 });
        assert!(e.source().is_some());
        assert!(DsaError::RetryExhausted { attempts: 1 }.source().is_none());
    }
}
