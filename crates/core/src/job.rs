//! The high-level job API — the crate's DML equivalent.
//!
//! A [`Job`] wraps one descriptor with its submission policy. Synchronous
//! execution reproduces the paper's offload phases (Fig. 5): *allocate* the
//! descriptor, *prepare* its fields, *submit* (`MOVDIR64B`/`ENQCMD`), and
//! *wait* for completion. Asynchronous submission plus [`AsyncQueue`]
//! reproduce the queue-depth-32 streaming mode used throughout §4.
//!
//! # The submission entry path
//!
//! All descriptor traffic funnels through this module; the layers above
//! only add policy:
//!
//! * [`Job`] / [`Batch`] — the **mechanism**: one descriptor (or batch
//!   descriptor) onto one WQ, paying the true instruction costs.
//!   [`Job::try_submit`] is the single-attempt primitive (a full WQ
//!   surfaces as an error); [`Job::submit`]/[`Job::execute`] wrap it in
//!   the hardware retry loop.
//! * [`AsyncQueue`] — depth-bounded streaming over `Job`, built on
//!   [`InflightWindow`](crate::submit::InflightWindow).
//! * [`Dispatcher`](crate::dispatch::Dispatcher) — **placement policy**
//!   (CPU vs DSA, sync vs async, batching) over the same mechanism.
//! * `DsaService` (the `dsa-svc` crate) — **multi-tenant policy**
//!   (admission control, priorities, deadlines) over `try_submit`.
//!
//! Raw `DsaDevice::submit` remains available for device-model tests but
//! skips the core-side instruction and phase accounting; application code
//! should enter through one of the layers above.
//!
//! ```
//! use dsa_core::prelude::*;
//! use dsa_mem::buffer::Location;
//!
//! let mut rt = DsaRuntime::spr_default();
//! let src = rt.alloc(4096, Location::local_dram());
//! let dst = rt.alloc(4096, Location::local_dram());
//! rt.fill_pattern(&src, 7);
//! let report = Job::memcpy(&src, &dst).execute(&mut rt).unwrap();
//! assert!(report.record.status.is_ok());
//! assert_eq!(rt.read(&dst).unwrap()[0], 7);
//! ```

use crate::error::DsaError;
use crate::runtime::DsaRuntime;
use crate::submit::{InflightWindow, SubmitMethod, WaitMethod};
use dsa_device::config::WqMode;
use dsa_device::descriptor::{BatchDescriptor, CompletionRecord, Descriptor};
use dsa_device::device::{ExecTimeline, SubmitError, WqId};
use dsa_mem::memory::BufferHandle;
use dsa_ops::dif::DifConfig;
use dsa_sim::time::{SimDuration, SimTime};
use dsa_telemetry::{JobTrace, Labels, Track};

/// Descriptor allocation cost when not amortized (paper Fig. 5: "the
/// descriptor allocation time is where most time is spent, though in
/// real-world use these descriptors are often pre-allocated").
const DESC_ALLOC: SimDuration = SimDuration::from_ns(900);
/// Writing the handful of descriptor fields (two stores in the amortized
/// case; §4.2 calls this "low-cost"). Shared with the backend layer so
/// dispatch estimates track what submission actually charges.
pub(crate) const DESC_PREPARE: SimDuration = SimDuration::from_ns(12);

/// Durations of the offload phases (Fig. 5's stacked bars).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Phases {
    /// Descriptor allocation (zero when amortized).
    pub alloc: SimDuration,
    /// Descriptor preparation.
    pub prepare: SimDuration,
    /// Submission instruction (including ENQCMD retries).
    pub submit: SimDuration,
    /// Waiting for the completion record.
    pub wait: SimDuration,
}

impl Phases {
    /// Total offload latency.
    pub fn total(&self) -> SimDuration {
        self.alloc + self.prepare + self.submit + self.wait
    }
}

/// Result of a completed job.
#[derive(Clone, Debug)]
pub struct JobReport {
    /// Completion record contents.
    pub record: CompletionRecord,
    /// Core-side phase breakdown.
    pub phases: Phases,
    /// Device-side phase timestamps.
    pub device_timeline: ExecTimeline,
    /// When the job began (clock at `execute` entry).
    pub started: SimTime,
    /// When the core observed completion.
    pub finished: SimTime,
    /// Core cycles spent in the optimized-wait state (Fig. 11).
    pub idle_wait: SimDuration,
}

impl JobReport {
    /// End-to-end elapsed time.
    pub fn elapsed(&self) -> SimDuration {
        self.finished.duration_since(self.started)
    }

    /// Achieved rate for `bytes` of nominal transfer.
    pub fn gbps(&self, bytes: u64) -> f64 {
        bytes as f64 / self.elapsed().as_ns_f64()
    }
}

/// A configured offload job.
#[derive(Clone, Debug)]
pub struct Job {
    desc: Descriptor,
    device: usize,
    wq: usize,
    wait: WaitMethod,
    amortized: bool,
}

impl Job {
    /// Wraps a raw descriptor.
    pub fn from_descriptor(desc: Descriptor) -> Job {
        Job { desc, device: 0, wq: 0, wait: WaitMethod::SpinPoll, amortized: true }
    }

    /// A job over one compiled op-program instruction: the descriptor is
    /// rebuilt on the stack (no heap traffic) and the instruction's
    /// placement applied. The per-attempt primitive behind
    /// [`OpProgram`](crate::program::OpProgram) replay and the service
    /// layer's retry loop.
    pub fn from_instr(i: &crate::program::OpInstr) -> Job {
        let mut desc = Descriptor::nop();
        i.write_into(&mut desc);
        Job {
            desc,
            device: i.device as usize,
            wq: i.wq as usize,
            wait: WaitMethod::SpinPoll,
            amortized: true,
        }
    }

    /// A no-op descriptor (useful for probing offload overheads).
    pub fn nop() -> Job {
        Job::from_descriptor(Descriptor::nop())
    }

    /// A drain descriptor: completes after everything previously submitted
    /// to the device has completed (ordering barrier).
    pub fn drain() -> Job {
        Job::from_descriptor(Descriptor::drain())
    }

    /// Memory copy.
    pub fn memcpy(src: &BufferHandle, dst: &BufferHandle) -> Job {
        let len = src.len().min(dst.len()) as u32;
        Job::from_descriptor(Descriptor::memmove(src.addr(), dst.addr(), len))
    }

    /// Memory fill with an 8-byte pattern.
    pub fn fill(dst: &BufferHandle, pattern: u64) -> Job {
        Job::from_descriptor(Descriptor::fill(dst.addr(), dst.len() as u32, pattern))
    }

    /// Memory compare.
    pub fn compare(a: &BufferHandle, b: &BufferHandle) -> Job {
        let len = a.len().min(b.len()) as u32;
        Job::from_descriptor(Descriptor::compare(a.addr(), b.addr(), len))
    }

    /// Compare against an 8-byte pattern.
    pub fn compare_pattern(buf: &BufferHandle, pattern: u64) -> Job {
        Job::from_descriptor(Descriptor::compare_pattern(buf.addr(), buf.len() as u32, pattern))
    }

    /// CRC32-C generation over `src`.
    pub fn crc32(src: &BufferHandle) -> Job {
        Job::from_descriptor(Descriptor::crc_gen(src.addr(), src.len() as u32))
    }

    /// Copy with CRC32-C of the transferred data.
    pub fn copy_crc(src: &BufferHandle, dst: &BufferHandle) -> Job {
        let len = src.len().min(dst.len()) as u32;
        Job::from_descriptor(Descriptor::copy_crc(src.addr(), dst.addr(), len))
    }

    /// Dualcast to two destinations.
    pub fn dualcast(src: &BufferHandle, dst1: &BufferHandle, dst2: &BufferHandle) -> Job {
        Job::from_descriptor(Descriptor::dualcast(
            src.addr(),
            dst1.addr(),
            dst2.addr(),
            src.len() as u32,
        ))
    }

    /// Create a delta record of `original` vs `modified` into `record`.
    pub fn delta_create(
        original: &BufferHandle,
        modified: &BufferHandle,
        record: &BufferHandle,
    ) -> Job {
        Job::from_descriptor(Descriptor::delta_create(
            original.addr(),
            modified.addr(),
            original.len() as u32,
            record.addr(),
            record.len() as u32,
        ))
    }

    /// Apply a delta record (of `record_len` bytes) to `target`.
    pub fn delta_apply(record: &BufferHandle, record_len: u32, target: &BufferHandle) -> Job {
        Job::from_descriptor(Descriptor::delta_apply(
            record.addr(),
            record_len,
            target.addr(),
            target.len() as u32,
        ))
    }

    /// DIF insert from raw blocks in `src` to protected blocks in `dst`.
    pub fn dif_insert(src: &BufferHandle, dst: &BufferHandle, cfg: DifConfig) -> Job {
        Job::from_descriptor(Descriptor::dif_insert(src.addr(), dst.addr(), src.len() as u32, cfg))
    }

    /// DIF check of protected blocks in `src`.
    pub fn dif_check(src: &BufferHandle, cfg: DifConfig) -> Job {
        Job::from_descriptor(Descriptor::dif_check(src.addr(), src.len() as u32, cfg))
    }

    /// DIF strip: verify protected blocks in `src`, write raw data to `dst`.
    pub fn dif_strip(src: &BufferHandle, dst: &BufferHandle, cfg: DifConfig) -> Job {
        Job::from_descriptor(Descriptor::dif_strip(src.addr(), dst.addr(), src.len() as u32, cfg))
    }

    /// DIF update: verify protected blocks in `src`, rewrite tuples to `dst`.
    pub fn dif_update(src: &BufferHandle, dst: &BufferHandle, cfg: DifConfig) -> Job {
        Job::from_descriptor(Descriptor::dif_update(src.addr(), dst.addr(), src.len() as u32, cfg))
    }

    /// Cache flush of the range behind `buf`.
    pub fn cache_flush(buf: &BufferHandle) -> Job {
        Job::from_descriptor(Descriptor::cache_flush(buf.addr(), buf.len() as u32))
    }

    /// Targets device `i` (default 0).
    pub fn on_device(mut self, i: usize) -> Job {
        self.device = i;
        self
    }

    /// Targets WQ `i` of the device (default 0).
    pub fn on_wq(mut self, i: usize) -> Job {
        self.wq = i;
        self
    }

    /// Chooses the completion wait method (default spin-poll, as in
    /// `dsa-perf-micros`).
    pub fn wait_method(mut self, w: WaitMethod) -> Job {
        self.wait = w;
        self
    }

    /// Steers destination writes into the LLC (cache control = 1, G3).
    pub fn cache_control(mut self) -> Job {
        self.desc = self.desc.with_cache_control();
        self
    }

    /// Blocks on page faults instead of partially completing.
    pub fn block_on_fault(mut self) -> Job {
        self.desc = self.desc.with_block_on_fault();
        self
    }

    /// Counts descriptor allocation in the phase breakdown (`false` =
    /// pre-allocated descriptors, the paper's default assumption).
    pub fn count_alloc(mut self, count: bool) -> Job {
        self.amortized = !count;
        self
    }

    /// The wrapped descriptor.
    pub fn descriptor(&self) -> &Descriptor {
        &self.desc
    }

    /// Executes synchronously: submit, wait, advance the runtime clock.
    ///
    /// # Errors
    ///
    /// Propagates non-retryable submission failures.
    pub fn execute(self, rt: &mut DsaRuntime) -> Result<JobReport, DsaError> {
        let started = rt.now();
        let wait = self.wait;
        let (handle, phases_pre) = self.submit_inner(rt)?;
        let report = handle.wait_with(rt, wait, phases_pre, started);
        Ok(report)
    }

    /// Submits asynchronously, retrying a full WQ until accepted: the
    /// clock advances only past the submission cost; completion is awaited
    /// through the returned handle.
    ///
    /// # Errors
    ///
    /// Propagates non-retryable submission failures.
    pub fn submit(self, rt: &mut DsaRuntime) -> Result<JobHandle, DsaError> {
        let (handle, _) = self.submit_inner(rt)?;
        Ok(handle)
    }

    /// Submits with a *single* portal attempt: a full WQ surfaces as
    /// [`DsaError::Submit`]([`SubmitError::WqFull`]) instead of being
    /// retried internally. Admission-controlled callers (the service
    /// layer's bounded retry-backoff) build on this; [`Job::submit`] is
    /// the retry-until-accepted convenience.
    ///
    /// The clock still advances past the preparation and the cost of the
    /// failed submission instruction — a rejected `ENQCMD` round trip is
    /// not free.
    ///
    /// # Errors
    ///
    /// `WqFull { retry_at }` when the WQ has no free slot, plus every
    /// non-retryable failure `submit` can return.
    pub fn try_submit(self, rt: &mut DsaRuntime) -> Result<JobHandle, DsaError> {
        let job_start = rt.now();
        self.preflight(rt)?;
        let (outcome, _cost) = self.attempt(rt);
        let exec = outcome?;
        self.note_submit_spans(rt, job_start);
        self.note_causal_trace(rt, job_start, &exec);
        Ok(self.handle_for(rt, &exec))
    }

    fn submit_inner(self, rt: &mut DsaRuntime) -> Result<(JobHandle, Phases), DsaError> {
        let job_start = rt.now();
        let mut phases = self.preflight(rt)?;
        let mut submit_cost = SimDuration::ZERO;
        let exec = loop {
            let (outcome, cost) = self.attempt(rt);
            submit_cost += cost;
            match outcome {
                Ok(exec) => break exec,
                Err(SubmitError::WqFull { retry_at }) => {
                    // The submitter retries when a slot frees (ENQCMD retry
                    // loop / software occupancy tracking for DWQs).
                    rt.advance_to(retry_at);
                }
                Err(e) => return Err(e.into()),
            }
        };
        phases.submit = submit_cost;
        self.note_submit_spans(rt, job_start);
        self.note_causal_trace(rt, job_start, &exec);
        let handle = self.handle_for(rt, &exec);
        Ok((handle, phases))
    }

    /// Validates targets and charges the alloc/prepare phases.
    fn preflight(&self, rt: &mut DsaRuntime) -> Result<Phases, DsaError> {
        if self.device >= rt.device_count() {
            return Err(DsaError::UnknownDevice { device: self.device });
        }
        if self.wq >= rt.device(self.device).wq_count() {
            return Err(DsaError::Submit(SubmitError::UnknownWq { wq: self.wq }));
        }
        let mut phases = Phases::default();
        if !self.amortized {
            phases.alloc = DESC_ALLOC;
            rt.advance(DESC_ALLOC);
        }
        phases.prepare = DESC_PREPARE;
        rt.advance(DESC_PREPARE);
        Ok(phases)
    }

    /// One submission-instruction attempt. The core cost (and the ENQCMD
    /// port serialization for shared WQs) is charged to the clock whether
    /// or not the device accepts — a rejected `ENQCMD` still completed
    /// with Retry status — and returned alongside the outcome.
    fn attempt(
        &self,
        rt: &mut DsaRuntime,
    ) -> (Result<dsa_device::device::Execution, SubmitError>, SimDuration) {
        let method = match rt.device(self.device).wq_mode(WqId(self.wq)) {
            WqMode::Dedicated => SubmitMethod::Movdir64b,
            WqMode::Shared => SubmitMethod::Enqcmd,
        };
        let issue = rt.now();
        let accept_at = if method.is_posted() {
            issue + method.core_cost()
        } else {
            let port = match rt.parts(self.device).0.enqcmd_accept(WqId(self.wq), issue) {
                Ok(port) => port,
                Err(e) => return (Err(e), SimDuration::ZERO),
            };
            port + (method.core_cost() - SimDuration::from_ns(40))
        };
        let (dev, memory, memsys) = rt.parts(self.device);
        let cost = accept_at.duration_since(issue);
        let outcome = dev.submit(memory, memsys, WqId(self.wq), &self.desc, accept_at);
        rt.advance(cost);
        (outcome, cost)
    }

    fn note_submit_spans(&self, rt: &DsaRuntime, job_start: SimTime) {
        if let Some(hub) = rt.hub() {
            let mut t = job_start;
            if !self.amortized {
                hub.span(Track::Job, "alloc", t, t + DESC_ALLOC);
                t += DESC_ALLOC;
            }
            hub.span(Track::Job, "prepare", t, t + DESC_PREPARE);
            hub.span(Track::Job, "submit", t + DESC_PREPARE, rt.now());
            hub.counter_add("jobs", Labels::wq(self.device as u16, self.wq as u16), 1);
        }
    }

    /// Records the job's attributed critical path: five segments that
    /// exactly partition job start → completion-record visibility. The
    /// timeline is analytic, so the full path is known at submission —
    /// this covers sync, async, and service callers alike (the service
    /// never calls `wait`; it reads `completion_time` directly).
    /// Software prep absorbs alloc/prepare/portal-write time plus any
    /// rejected-attempt backoff spent before the WQ accepted.
    fn note_causal_trace(
        &self,
        rt: &DsaRuntime,
        job_start: SimTime,
        exec: &dsa_device::device::Execution,
    ) {
        if let Some(hub) = rt.hub() {
            let tl = &exec.timeline;
            hub.record_job_trace(JobTrace::from_boundaries(
                hub.next_trace_id(),
                self.device as u16,
                self.wq as u16,
                self.desc.opcode.mnemonic(),
                self.desc.xfer_size,
                [job_start, tl.admitted, tl.dispatched, tl.translated, tl.data_done, tl.completed],
            ));
        }
    }

    fn handle_for(&self, rt: &DsaRuntime, exec: &dsa_device::device::Execution) -> JobHandle {
        JobHandle {
            record: exec.record,
            device_timeline: exec.timeline,
            submit_end: rt.now(),
            xfer_size: self.desc.xfer_size,
        }
    }
}

/// An in-flight asynchronous job.
#[derive(Clone, Debug)]
pub struct JobHandle {
    record: CompletionRecord,
    device_timeline: ExecTimeline,
    submit_end: SimTime,
    xfer_size: u32,
}

impl JobHandle {
    /// When the device will have completed this job.
    pub fn completion_time(&self) -> SimTime {
        self.device_timeline.completed
    }

    /// The completion record the device will have written by
    /// [`completion_time`](Self::completion_time) — lets async callers
    /// check for page-faulted partial completion without blocking.
    pub fn record(&self) -> &CompletionRecord {
        &self.record
    }

    /// The nominal transfer size.
    pub fn xfer_size(&self) -> u32 {
        self.xfer_size
    }

    /// True if the completion record would already be visible at `now`.
    pub fn is_complete(&self, now: SimTime) -> bool {
        now >= self.device_timeline.completed
    }

    /// Waits (spin-poll) and advances the clock.
    pub fn wait(self, rt: &mut DsaRuntime) -> JobReport {
        let started = self.submit_end;
        self.wait_with(rt, WaitMethod::SpinPoll, Phases::default(), started)
    }

    fn wait_with(
        self,
        rt: &mut DsaRuntime,
        wait: WaitMethod,
        mut phases: Phases,
        started: SimTime,
    ) -> JobReport {
        let w = wait.wait(rt.now(), self.device_timeline.completed);
        phases.wait = w.observed_at.saturating_duration_since(rt.now());
        if let Some(hub) = rt.hub().cloned() {
            hub.span(Track::Job, "wait", rt.now(), w.observed_at);
            hub.observe(
                "job_latency",
                Labels::none(),
                w.observed_at.saturating_duration_since(started),
            );
        }
        rt.advance_to(w.observed_at);
        JobReport {
            record: self.record,
            phases,
            device_timeline: self.device_timeline,
            started,
            finished: rt.now(),
            idle_wait: w.idle,
        }
    }
}

/// A software queue keeping up to `depth` jobs in flight — the paper's
/// asynchronous mode ("a queue depth of 32 unless otherwise stated", §4.1).
///
/// Built on the shared [`InflightWindow`] primitive, so its queue-depth
/// semantics are identical to the dispatcher's async path and the service
/// layer's sessions.
#[derive(Debug)]
pub struct AsyncQueue {
    window: InflightWindow<JobHandle>,
    bytes: u64,
}

impl AsyncQueue {
    /// Creates a queue with the given depth.
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0`.
    pub fn new(depth: usize) -> AsyncQueue {
        AsyncQueue { window: InflightWindow::new(depth), bytes: 0 }
    }

    /// Submits `job`, first reaping the oldest in-flight job if the queue
    /// is at depth (advancing the clock to its completion when needed).
    ///
    /// # Errors
    ///
    /// Propagates submission failures.
    pub fn submit(&mut self, rt: &mut DsaRuntime, job: Job) -> Result<(), DsaError> {
        if self.window.is_full() {
            if let Some((t, h)) = self.window.pop_oldest() {
                rt.advance_to(t);
                self.bytes += h.xfer_size() as u64;
            }
        }
        // Reap anything already finished (free bookkeeping, like checking
        // completion records opportunistically).
        while let Some((_, h)) = self.window.pop_completed(rt.now()) {
            self.bytes += h.xfer_size() as u64;
        }
        let handle = job.submit(rt)?;
        self.window.push(handle.completion_time(), handle);
        Ok(())
    }

    /// Waits for everything outstanding; returns the last completion time.
    pub fn drain(&mut self, rt: &mut DsaRuntime) -> SimTime {
        while let Some((t, h)) = self.window.pop_oldest() {
            rt.advance_to(t);
            self.bytes += h.xfer_size() as u64;
        }
        self.window.last_completion()
    }

    /// Jobs fully completed and reaped.
    pub fn completed(&self) -> u64 {
        self.window.retired()
    }

    /// Bytes across completed jobs.
    pub fn completed_bytes(&self) -> u64 {
        self.bytes
    }
}

/// A batch of descriptors submitted through one batch descriptor (§3.4/F2).
#[derive(Clone, Debug, Default)]
pub struct Batch {
    descs: Vec<Descriptor>,
    device: usize,
    wq: usize,
    cache_control: bool,
}

impl Batch {
    /// An empty batch.
    pub fn new() -> Batch {
        Batch::default()
    }

    /// Adds a job's descriptor to the batch.
    pub fn push(&mut self, job: Job) -> &mut Batch {
        self.descs.push(job.desc);
        self
    }

    /// Adds a compiled op-program instruction's descriptor to the batch
    /// (the instruction's placement is ignored; the batch's own
    /// device/WQ targeting applies).
    pub fn push_instr(&mut self, i: &crate::program::OpInstr) -> &mut Batch {
        self.descs.push(i.descriptor());
        self
    }

    /// Number of descriptors queued.
    pub fn len(&self) -> usize {
        self.descs.len()
    }

    /// True when the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.descs.is_empty()
    }

    /// Targets device `i`.
    pub fn on_device(mut self, i: usize) -> Batch {
        self.device = i;
        self
    }

    /// Targets WQ `i`.
    pub fn on_wq(mut self, i: usize) -> Batch {
        self.wq = i;
        self
    }

    /// Applies cache control to every member descriptor.
    pub fn cache_control(mut self) -> Batch {
        self.cache_control = true;
        self
    }

    /// Submits the batch asynchronously: the clock advances past the
    /// per-descriptor preparation and the single submission instruction;
    /// the returned handle carries per-member completion info.
    ///
    /// # Errors
    ///
    /// Propagates submission failures.
    pub fn submit(mut self, rt: &mut DsaRuntime) -> Result<BatchHandle, DsaError> {
        if self.device >= rt.device_count() {
            return Err(DsaError::UnknownDevice { device: self.device });
        }
        let job_start = rt.now();
        if self.cache_control {
            for d in &mut self.descs {
                *d = d.clone().with_cache_control();
            }
        }
        rt.advance(DESC_PREPARE.saturating_mul(self.descs.len() as u64));
        let list = rt.alloc(64 * self.descs.len() as u64, dsa_mem::buffer::Location::local_dram());
        rt.advance(SubmitMethod::Movdir64b.core_cost());
        let batch = BatchDescriptor::new(list.addr(), self.descs.len() as u32);
        let exec = loop {
            let now = rt.now();
            let (dev, memory, memsys) = rt.parts(self.device);
            match dev.submit_batch(memory, memsys, WqId(self.wq), &batch, &self.descs, now) {
                Ok(exec) => break exec,
                Err(SubmitError::WqFull { retry_at }) => rt.advance_to(retry_at),
                Err(e) => return Err(e.into()),
            }
        };
        self.note_batch_trace(rt, job_start, &exec);
        Ok(BatchHandle {
            records: exec.records,
            batch_record: exec.batch_record,
            member_done: exec.timeline.data_done,
            completed: exec.completed,
            submit_end: rt.now(),
        })
    }

    /// Submits the batch and waits for the batch completion record.
    ///
    /// # Errors
    ///
    /// Propagates submission failures.
    pub fn execute(mut self, rt: &mut DsaRuntime) -> Result<BatchReport, DsaError> {
        if self.device >= rt.device_count() {
            return Err(DsaError::UnknownDevice { device: self.device });
        }
        if self.cache_control {
            for d in &mut self.descs {
                *d = d.clone().with_cache_control();
            }
        }
        let started = rt.now();
        rt.advance(DESC_PREPARE.saturating_mul(self.descs.len() as u64));
        // One descriptor-list allocation, assumed pre-allocated (amortized).
        let list = rt.alloc(64 * self.descs.len() as u64, dsa_mem::buffer::Location::local_dram());
        let method_cost = SubmitMethod::Movdir64b.core_cost();
        rt.advance(method_cost);
        let batch = BatchDescriptor::new(list.addr(), self.descs.len() as u32);
        let exec = loop {
            let now = rt.now();
            let (dev, memory, memsys) = rt.parts(self.device);
            match dev.submit_batch(memory, memsys, WqId(self.wq), &batch, &self.descs, now) {
                Ok(exec) => break exec,
                Err(SubmitError::WqFull { retry_at }) => rt.advance_to(retry_at),
                Err(e) => return Err(e.into()),
            }
        };
        self.note_batch_trace(rt, started, &exec);
        let w = WaitMethod::SpinPoll.wait(rt.now(), exec.completed);
        rt.advance_to(w.observed_at);
        Ok(BatchReport {
            records: exec.records,
            batch_record: exec.batch_record,
            started,
            finished: rt.now(),
        })
    }

    /// Records the batch's attributed critical path, one trace for the
    /// whole batch (its timeline is batch-granular: member fetches count
    /// as PE-side work, member data movement as the memory hop).
    fn note_batch_trace(
        &self,
        rt: &DsaRuntime,
        job_start: SimTime,
        exec: &dsa_device::device::BatchExecution,
    ) {
        if let Some(hub) = rt.hub() {
            let tl = &exec.timeline;
            let bytes: u64 = self.descs.iter().map(|d| u64::from(d.xfer_size)).sum();
            hub.record_job_trace(JobTrace::from_boundaries(
                hub.next_trace_id(),
                self.device as u16,
                self.wq as u16,
                "batch",
                u32::try_from(bytes).unwrap_or(u32::MAX),
                [job_start, tl.admitted, tl.dispatched, tl.translated, tl.data_done, tl.completed],
            ));
        }
    }
}

/// An in-flight asynchronous batch.
#[derive(Clone, Debug)]
pub struct BatchHandle {
    /// Per-member completion records (in submission order).
    pub records: Vec<CompletionRecord>,
    /// The batch-granular record.
    pub batch_record: CompletionRecord,
    member_done: SimTime,
    completed: SimTime,
    submit_end: SimTime,
}

impl BatchHandle {
    /// When the batch completion record becomes visible.
    pub fn completion_time(&self) -> SimTime {
        self.completed
    }

    /// When the last member's data landed.
    pub fn data_done(&self) -> SimTime {
        self.member_done
    }

    /// True if complete at `now`.
    pub fn is_complete(&self, now: SimTime) -> bool {
        now >= self.completed
    }

    /// When submission finished (core free again).
    pub fn submit_end(&self) -> SimTime {
        self.submit_end
    }
}

/// Result of a completed batch.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Per-member completion records.
    pub records: Vec<CompletionRecord>,
    /// The batch-granular record.
    pub batch_record: CompletionRecord,
    /// Clock at submission start.
    pub started: SimTime,
    /// Clock when the batch record was observed.
    pub finished: SimTime,
}

impl BatchReport {
    /// End-to-end elapsed time.
    pub fn elapsed(&self) -> SimDuration {
        self.finished.duration_since(self.started)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsa_device::config::{DeviceConfig, GroupConfig, WqConfig};
    use dsa_device::descriptor::Status;
    use dsa_mem::buffer::Location;
    use dsa_mem::topology::Platform;
    use dsa_ops::crc32::Crc32c;

    #[test]
    fn sync_memcpy_end_to_end() {
        let mut rt = DsaRuntime::spr_default();
        let src = rt.alloc(8192, Location::local_dram());
        let dst = rt.alloc(8192, Location::local_dram());
        rt.fill_random(&src);
        let report = Job::memcpy(&src, &dst).execute(&mut rt).unwrap();
        assert_eq!(report.record.status, Status::Success);
        assert_eq!(rt.read(&src).unwrap(), rt.read(&dst).unwrap());
        assert!(report.elapsed().as_ns_f64() > 200.0);
        assert_eq!(report.phases.alloc, SimDuration::ZERO, "amortized by default");
        assert!(report.phases.wait > report.phases.submit);
    }

    #[test]
    fn count_alloc_adds_dominant_phase() {
        let mut rt = DsaRuntime::spr_default();
        let src = rt.alloc(4096, Location::local_dram());
        let dst = rt.alloc(4096, Location::local_dram());
        let report = Job::memcpy(&src, &dst).count_alloc(true).execute(&mut rt).unwrap();
        // Fig. 5: allocation is the single largest component.
        assert!(report.phases.alloc >= report.phases.prepare);
        assert!(report.phases.alloc >= report.phases.submit);
    }

    #[test]
    fn crc_job_returns_value() {
        let mut rt = DsaRuntime::spr_default();
        let src = rt.alloc(1024, Location::local_dram());
        rt.fill_random(&src);
        let expected = Crc32c::checksum(rt.read(&src).unwrap());
        let report = Job::crc32(&src).execute(&mut rt).unwrap();
        assert_eq!(report.record.result as u32, expected);
    }

    #[test]
    fn async_queue_streams_and_drains() {
        let mut rt = DsaRuntime::spr_default();
        let src = rt.alloc(65536, Location::local_dram());
        let dst = rt.alloc(65536, Location::local_dram());
        let mut q = AsyncQueue::new(32);
        for _ in 0..100 {
            q.submit(&mut rt, Job::memcpy(&src, &dst)).unwrap();
        }
        let end = q.drain(&mut rt);
        assert_eq!(q.completed(), 100);
        assert_eq!(q.completed_bytes(), 100 * 65536);
        assert!(end > SimTime::ZERO);
        // Async streaming beats one-at-a-time by a wide margin.
        let gbps = q.completed_bytes() as f64 / end.as_ns_f64();
        assert!(gbps > 15.0, "async 64 KiB copies reached only {gbps} GB/s");
    }

    #[test]
    fn async_faster_than_sync_for_small_transfers() {
        let size = 1024u64;
        let n = 64;

        let mut rt = DsaRuntime::spr_default();
        let src = rt.alloc(size, Location::local_dram());
        let dst = rt.alloc(size, Location::local_dram());
        for _ in 0..n {
            Job::memcpy(&src, &dst).execute(&mut rt).unwrap();
        }
        let sync_elapsed = rt.now();

        let mut rt = DsaRuntime::spr_default();
        let src = rt.alloc(size, Location::local_dram());
        let dst = rt.alloc(size, Location::local_dram());
        let mut q = AsyncQueue::new(32);
        for _ in 0..n {
            q.submit(&mut rt, Job::memcpy(&src, &dst)).unwrap();
        }
        let async_elapsed = q.drain(&mut rt);
        assert!(
            async_elapsed.as_ns_f64() < sync_elapsed.as_ns_f64() / 3.0,
            "async {async_elapsed:?} vs sync {sync_elapsed:?}"
        );
    }

    #[test]
    fn batch_executes_members() {
        let mut rt = DsaRuntime::spr_default();
        let mut batch = Batch::new();
        let mut dsts = Vec::new();
        for _ in 0..8 {
            let src = rt.alloc(2048, Location::local_dram());
            let dst = rt.alloc(2048, Location::local_dram());
            rt.fill_pattern(&src, 0xCD);
            batch.push(Job::memcpy(&src, &dst));
            dsts.push(dst);
        }
        let report = batch.execute(&mut rt).unwrap();
        assert_eq!(report.records.len(), 8);
        assert_eq!(report.batch_record.status, Status::Success);
        for dst in &dsts {
            assert!(rt.read(dst).unwrap().iter().all(|&b| b == 0xCD));
        }
    }

    #[test]
    fn shared_wq_uses_enqcmd_cost() {
        let cfg = DeviceConfig {
            groups: vec![GroupConfig::with_engines(1)],
            wqs: vec![WqConfig::shared(32, 0)],
        };
        let mut rt = DsaRuntime::builder(Platform::spr()).device(cfg).build();
        let src = rt.alloc(4096, Location::local_dram());
        let dst = rt.alloc(4096, Location::local_dram());
        let swq = Job::memcpy(&src, &dst).execute(&mut rt).unwrap();

        let mut rt2 = DsaRuntime::spr_default();
        let src2 = rt2.alloc(4096, Location::local_dram());
        let dst2 = rt2.alloc(4096, Location::local_dram());
        let dwq = Job::memcpy(&src2, &dst2).execute(&mut rt2).unwrap();

        assert!(
            swq.phases.submit > dwq.phases.submit,
            "ENQCMD {:?} should cost more than MOVDIR64B {:?}",
            swq.phases.submit,
            dwq.phases.submit
        );
    }

    #[test]
    fn unknown_device_rejected() {
        let mut rt = DsaRuntime::spr_default();
        let src = rt.alloc(64, Location::local_dram());
        let dst = rt.alloc(64, Location::local_dram());
        let err = Job::memcpy(&src, &dst).on_device(3).execute(&mut rt).unwrap_err();
        assert_eq!(err, DsaError::UnknownDevice { device: 3 });
    }

    #[test]
    fn umwait_reports_idle_cycles() {
        let mut rt = DsaRuntime::spr_default();
        let src = rt.alloc(1 << 20, Location::local_dram());
        let dst = rt.alloc(1 << 20, Location::local_dram());
        let report =
            Job::memcpy(&src, &dst).wait_method(WaitMethod::Umwait).execute(&mut rt).unwrap();
        // Large transfer: almost the whole wait is spent in UMWAIT.
        let frac = report.idle_wait.as_ns_f64() / report.elapsed().as_ns_f64();
        assert!(frac > 0.9, "idle fraction {frac}");
    }
}
