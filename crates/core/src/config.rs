//! The `libaccel-config` equivalent: an ergonomic, validated builder for
//! device configurations.
//!
//! Mirrors how `accel-config` (and the IDXD sysfs interface) is used:
//! declare groups with engines, carve WQ storage into dedicated/shared
//! queues with priorities, then "enable" — which is when validation runs.
//!
//! ```
//! use dsa_core::config::AccelConfig;
//!
//! // Paper Fig. 9's "DWQ: 4" setup: four dedicated WQs, one engine each.
//! let mut cfg = AccelConfig::new();
//! for _ in 0..4 {
//!     let g = cfg.add_group(1);
//!     cfg.add_dedicated_wq(32, g);
//! }
//! let device_config = cfg.enable().unwrap();
//! assert_eq!(device_config.wqs.len(), 4);
//! ```

use dsa_device::config::{ConfigError, DeviceCaps, DeviceConfig, GroupConfig, WqConfig};

/// Builder for a validated [`DeviceConfig`].
#[derive(Clone, Debug, Default)]
pub struct AccelConfig {
    groups: Vec<GroupConfig>,
    wqs: Vec<WqConfig>,
    caps: Option<DeviceCaps>,
}

impl AccelConfig {
    /// An empty configuration.
    pub fn new() -> AccelConfig {
        AccelConfig::default()
    }

    /// Overrides the capability set validated against (default: DSA 1.0).
    pub fn with_caps(mut self, caps: DeviceCaps) -> AccelConfig {
        self.caps = Some(caps);
        self
    }

    /// Adds a group with `engines` engines; returns its index.
    pub fn add_group(&mut self, engines: u32) -> usize {
        self.groups.push(GroupConfig::with_engines(engines));
        self.groups.len() - 1
    }

    /// Caps the read buffers per engine of group `group` (QoS control,
    /// §3.4/F3).
    ///
    /// # Panics
    ///
    /// Panics if `group` was not created by [`add_group`](Self::add_group).
    pub fn limit_read_buffers(&mut self, group: usize, per_engine: u32) -> &mut AccelConfig {
        self.groups[group].read_buffers_per_engine = Some(per_engine);
        self
    }

    /// Adds a dedicated WQ of `size` entries to `group`; returns its index.
    pub fn add_dedicated_wq(&mut self, size: u32, group: usize) -> usize {
        self.wqs.push(WqConfig::dedicated(size, group));
        self.wqs.len() - 1
    }

    /// Adds a shared WQ of `size` entries to `group`; returns its index.
    pub fn add_shared_wq(&mut self, size: u32, group: usize) -> usize {
        self.wqs.push(WqConfig::shared(size, group));
        self.wqs.len() - 1
    }

    /// Sets the priority (1..=15) of WQ `wq`.
    ///
    /// # Panics
    ///
    /// Panics if `wq` was not created by an `add_*_wq` call.
    pub fn set_priority(&mut self, wq: usize, priority: u8) -> &mut AccelConfig {
        self.wqs[wq].priority = priority;
        self
    }

    /// Validates and produces the device configuration ("enabling" the
    /// device in `accel-config` terms).
    ///
    /// # Errors
    ///
    /// Returns the first constraint the IDXD rules reject.
    pub fn enable(self) -> Result<DeviceConfig, ConfigError> {
        let cfg = DeviceConfig { groups: self.groups, wqs: self.wqs };
        cfg.validate(&self.caps.unwrap_or_else(DeviceCaps::dsa1))?;
        Ok(cfg)
    }
}

/// Ready-made configurations used across the paper's figures.
pub mod presets {
    use super::*;

    /// One group, one engine, one dedicated 32-entry WQ (§4.1 baseline).
    pub fn single_engine_dwq() -> DeviceConfig {
        DeviceConfig::single_engine()
    }

    /// One group with `engines` engines behind one dedicated WQ of
    /// `wq_size` entries (Figs. 4/7).
    ///
    /// # Panics
    ///
    /// Panics if the parameters violate device capabilities.
    pub fn engines_behind_one_dwq(engines: u32, wq_size: u32) -> DeviceConfig {
        let mut cfg = AccelConfig::new();
        let g = cfg.add_group(engines);
        cfg.add_dedicated_wq(wq_size, g);
        // dsa-lint: allow(unwrap, documented panicking preset; invalid parameters are a caller bug)
        cfg.enable().expect("preset within DSA 1.0 capabilities")
    }

    /// `n` dedicated WQs, each with its own single-engine group
    /// (Fig. 9 "DWQ: N").
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the engine or WQ budget.
    pub fn n_dwqs_n_engines(n: u32) -> DeviceConfig {
        let mut cfg = AccelConfig::new();
        for _ in 0..n {
            let g = cfg.add_group(1);
            cfg.add_dedicated_wq(128 / n.max(1), g);
        }
        // dsa-lint: allow(unwrap, documented panicking preset; invalid parameters are a caller bug)
        cfg.enable().expect("preset within DSA 1.0 capabilities")
    }

    /// One shared WQ behind one engine (Fig. 9 "SWQ: N" — N is the number
    /// of submitting threads, not a device property).
    pub fn one_swq_one_engine() -> DeviceConfig {
        let mut cfg = AccelConfig::new();
        let g = cfg.add_group(1);
        cfg.add_shared_wq(32, g);
        // dsa-lint: allow(unwrap, fixed-shape preset is always within DSA 1.0 capabilities)
        cfg.enable().expect("preset within DSA 1.0 capabilities")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsa_device::config::WqMode;

    #[test]
    fn builder_produces_valid_config() {
        let mut cfg = AccelConfig::new();
        let g0 = cfg.add_group(2);
        let g1 = cfg.add_group(2);
        cfg.add_dedicated_wq(64, g0);
        let w = cfg.add_shared_wq(64, g1);
        cfg.set_priority(w, 12);
        let dc = cfg.enable().unwrap();
        assert_eq!(dc.groups.len(), 2);
        assert_eq!(dc.wqs[1].priority, 12);
        assert_eq!(dc.wqs[1].mode, WqMode::Shared);
    }

    #[test]
    fn over_budget_rejected_at_enable() {
        let mut cfg = AccelConfig::new();
        let g = cfg.add_group(5); // > 4 engines
        cfg.add_dedicated_wq(8, g);
        assert!(matches!(cfg.enable(), Err(ConfigError::TooManyEngines { .. })));
    }

    #[test]
    fn read_buffer_limit_recorded() {
        let mut cfg = AccelConfig::new();
        let g = cfg.add_group(1);
        cfg.limit_read_buffers(g, 16);
        cfg.add_dedicated_wq(8, g);
        let dc = cfg.enable().unwrap();
        assert_eq!(dc.groups[0].read_buffers_per_engine, Some(16));
    }

    #[test]
    fn presets_validate() {
        presets::single_engine_dwq().validate(&DeviceCaps::dsa1()).unwrap();
        presets::engines_behind_one_dwq(4, 128).validate(&DeviceCaps::dsa1()).unwrap();
        presets::n_dwqs_n_engines(4).validate(&DeviceCaps::dsa1()).unwrap();
        presets::one_swq_one_engine().validate(&DeviceCaps::dsa1()).unwrap();
    }

    #[test]
    fn preset_dwq_split_shares_storage() {
        let dc = presets::n_dwqs_n_engines(4);
        let total: u32 = dc.wqs.iter().map(|w| w.size).sum();
        assert!(total <= 128);
        assert_eq!(dc.wqs.len(), 4);
    }
}
