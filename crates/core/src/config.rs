//! The `libaccel-config` equivalent: an ergonomic, validated builder for
//! device configurations.
//!
//! Mirrors how `accel-config` (and the IDXD sysfs interface) is used:
//! declare groups with engines, carve WQ storage into dedicated/shared
//! queues with priorities, then [`build`](AccelConfig::build) — which is
//! when the IDXD validation rules run. The builder chains by value; each
//! `group`/`engines` call opens a new group that subsequent WQ and
//! read-buffer calls attach to.
//!
//! ```
//! use dsa_core::config::AccelConfig;
//!
//! // Paper Fig. 9's "DWQ: 4" setup: four dedicated WQs, one engine each.
//! let device_config = AccelConfig::builder()
//!     .group(1).dedicated_wq(32)
//!     .group(1).dedicated_wq(32)
//!     .group(1).dedicated_wq(32)
//!     .group(1).dedicated_wq(32)
//!     .build()
//!     .unwrap();
//! assert_eq!(device_config.wqs.len(), 4);
//!
//! // Or the short form: 4 engines in one group, 8 DWQs splitting the
//! // 128-entry storage.
//! let cfg = AccelConfig::builder().engines(4).wqs(8).build().unwrap();
//! assert_eq!(cfg.wqs.len(), 8);
//! ```

use crate::error::DsaError;
use dsa_device::config::{DeviceCaps, DeviceConfig, GroupConfig, WqConfig};

/// Total WQ entry storage of a DSA 1.0 device, split by [`AccelConfig::wqs`].
const TOTAL_WQ_ENTRIES: u32 = 128;

/// Validating builder for a [`DeviceConfig`].
///
/// Obtained from [`AccelConfig::builder`]; consumed by
/// [`build`](AccelConfig::build), which returns
/// [`DsaError::InvalidConfig`] on envelope violations.
#[derive(Clone, Debug, Default)]
pub struct AccelConfig {
    groups: Vec<GroupConfig>,
    wqs: Vec<WqConfig>,
    caps: Option<DeviceCaps>,
}

impl AccelConfig {
    /// Starts an empty configuration.
    pub fn builder() -> AccelConfig {
        AccelConfig::default()
    }

    /// Overrides the capability set validated against (default: DSA 1.0).
    pub fn caps(mut self, caps: DeviceCaps) -> AccelConfig {
        self.caps = Some(caps);
        self
    }

    /// Opens a new group with `engines` engines; subsequent
    /// [`dedicated_wq`](Self::dedicated_wq) / [`shared_wq`](Self::shared_wq)
    /// / [`read_buffers`](Self::read_buffers) calls attach to it.
    pub fn group(mut self, engines: u32) -> AccelConfig {
        self.groups.push(GroupConfig::with_engines(engines));
        self
    }

    /// Alias for [`group`](Self::group): the common one-group-of-`n`-engines
    /// shape reads as `builder().engines(4)`.
    pub fn engines(self, n: u32) -> AccelConfig {
        self.group(n)
    }

    /// Caps the read buffers per engine of the current group (QoS control,
    /// §3.4/F3). Opens a single-engine group if none exists yet.
    pub fn read_buffers(mut self, per_engine: u32) -> AccelConfig {
        if self.groups.is_empty() {
            self = self.group(1);
        }
        let last = self.groups.len() - 1;
        self.groups[last].read_buffers_per_engine = Some(per_engine);
        self
    }

    /// Adds a dedicated WQ of `size` entries to the current group (opening
    /// a single-engine group if none exists yet).
    pub fn dedicated_wq(mut self, size: u32) -> AccelConfig {
        if self.groups.is_empty() {
            self = self.group(1);
        }
        let g = self.groups.len() - 1;
        self.dedicated_wq_in(size, g)
    }

    /// Adds a shared WQ of `size` entries to the current group (opening a
    /// single-engine group if none exists yet).
    pub fn shared_wq(mut self, size: u32) -> AccelConfig {
        if self.groups.is_empty() {
            self = self.group(1);
        }
        let g = self.groups.len() - 1;
        self.shared_wq_in(size, g)
    }

    /// Adds a dedicated WQ of `size` entries to group `group` (0-based, in
    /// [`group`](Self::group) call order).
    pub fn dedicated_wq_in(mut self, size: u32, group: usize) -> AccelConfig {
        self.wqs.push(WqConfig::dedicated(size, group));
        self
    }

    /// Adds a shared WQ of `size` entries to group `group`.
    pub fn shared_wq_in(mut self, size: u32, group: usize) -> AccelConfig {
        self.wqs.push(WqConfig::shared(size, group));
        self
    }

    /// Splits the 128-entry WQ storage into `n` equal dedicated WQs on the
    /// current group (opening a single-engine group if none exists yet).
    pub fn wqs(mut self, n: u32) -> AccelConfig {
        let size = (TOTAL_WQ_ENTRIES / n.max(1)).max(1);
        for _ in 0..n {
            self = self.dedicated_wq(size);
        }
        self
    }

    /// Sets the priority (1..=15) of the most recently added WQ.
    ///
    /// # Panics
    ///
    /// Panics if no WQ has been added yet (a builder-usage bug).
    pub fn priority(mut self, priority: u8) -> AccelConfig {
        // dsa-lint: allow(unwrap, documented panic on builder misuse (priority before any WQ))
        let last = self.wqs.len().checked_sub(1).expect("priority() before any WQ was added");
        self.wqs[last].priority = priority;
        self
    }

    /// Index the next [`group`](Self::group) call will get — for wiring
    /// explicit [`dedicated_wq_in`](Self::dedicated_wq_in) topologies.
    pub fn next_group(&self) -> usize {
        self.groups.len()
    }

    /// Index the next `*_wq` call will get — callers that later address
    /// WQs by index (e.g. `Job::on_wq`) can record it while building.
    pub fn next_wq(&self) -> usize {
        self.wqs.len()
    }

    /// Validates and produces the device configuration ("enabling" the
    /// device in `accel-config` terms).
    ///
    /// # Errors
    ///
    /// Returns [`DsaError::InvalidConfig`] wrapping the first constraint
    /// the IDXD rules reject.
    pub fn build(self) -> Result<DeviceConfig, DsaError> {
        let cfg = DeviceConfig { groups: self.groups, wqs: self.wqs };
        cfg.validate(&self.caps.unwrap_or_else(DeviceCaps::dsa1))
            .map_err(DsaError::InvalidConfig)?;
        Ok(cfg)
    }
}

/// Ready-made configurations used across the paper's figures.
pub mod presets {
    use super::*;

    /// One group, one engine, one dedicated 32-entry WQ (§4.1 baseline).
    pub fn single_engine_dwq() -> DeviceConfig {
        DeviceConfig::single_engine()
    }

    /// One group with `engines` engines behind one dedicated WQ of
    /// `wq_size` entries (Figs. 4/7).
    ///
    /// # Panics
    ///
    /// Panics if the parameters violate device capabilities.
    pub fn engines_behind_one_dwq(engines: u32, wq_size: u32) -> DeviceConfig {
        AccelConfig::builder()
            .group(engines)
            .dedicated_wq(wq_size)
            .build()
            // dsa-lint: allow(unwrap, documented panicking preset; invalid parameters are a caller bug)
            .expect("preset within DSA 1.0 capabilities")
    }

    /// `n` dedicated WQs, each with its own single-engine group
    /// (Fig. 9 "DWQ: N").
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the engine or WQ budget.
    pub fn n_dwqs_n_engines(n: u32) -> DeviceConfig {
        let mut cfg = AccelConfig::builder();
        for _ in 0..n {
            cfg = cfg.group(1).dedicated_wq(128 / n.max(1));
        }
        // dsa-lint: allow(unwrap, documented panicking preset; invalid parameters are a caller bug)
        cfg.build().expect("preset within DSA 1.0 capabilities")
    }

    /// One shared WQ behind one engine (Fig. 9 "SWQ: N" — N is the number
    /// of submitting threads, not a device property).
    pub fn one_swq_one_engine() -> DeviceConfig {
        AccelConfig::builder()
            .group(1)
            .shared_wq(32)
            .build()
            // dsa-lint: allow(unwrap, fixed-shape preset is always within DSA 1.0 capabilities)
            .expect("preset within DSA 1.0 capabilities")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsa_device::config::{ConfigError, WqMode};

    #[test]
    fn builder_produces_valid_config() {
        let dc = AccelConfig::builder()
            .group(2)
            .dedicated_wq(64)
            .group(2)
            .shared_wq(64)
            .priority(12)
            .build()
            .unwrap();
        assert_eq!(dc.groups.len(), 2);
        assert_eq!(dc.wqs[1].priority, 12);
        assert_eq!(dc.wqs[1].mode, WqMode::Shared);
    }

    #[test]
    fn over_budget_rejected_at_build() {
        let r = AccelConfig::builder().group(5).dedicated_wq(8).build(); // > 4 engines
        assert!(matches!(r, Err(DsaError::InvalidConfig(ConfigError::TooManyEngines { .. }))));
    }

    #[test]
    fn read_buffer_limit_recorded() {
        let dc = AccelConfig::builder().group(1).read_buffers(16).dedicated_wq(8).build().unwrap();
        assert_eq!(dc.groups[0].read_buffers_per_engine, Some(16));
    }

    #[test]
    fn engines_wqs_shorthand_splits_storage() {
        let dc = AccelConfig::builder().engines(4).wqs(8).build().unwrap();
        assert_eq!(dc.groups.len(), 1);
        assert_eq!(dc.wqs.len(), 8);
        assert!(dc.wqs.iter().all(|w| w.size == 16));
    }

    #[test]
    fn wq_calls_open_an_implicit_group() {
        let dc = AccelConfig::builder().dedicated_wq(32).build().unwrap();
        assert_eq!(dc.groups.len(), 1);
        assert_eq!(dc.groups[0].engines, 1);
    }

    #[test]
    fn explicit_group_indices_cross_wire() {
        let dc = AccelConfig::builder()
            .group(1)
            .group(3)
            .dedicated_wq_in(32, 0)
            .shared_wq_in(32, 1)
            .build()
            .unwrap();
        assert_eq!(dc.wqs[0].group, 0);
        assert_eq!(dc.wqs[1].group, 1);
    }

    #[test]
    fn presets_validate() {
        presets::single_engine_dwq().validate(&DeviceCaps::dsa1()).unwrap();
        presets::engines_behind_one_dwq(4, 128).validate(&DeviceCaps::dsa1()).unwrap();
        presets::n_dwqs_n_engines(4).validate(&DeviceCaps::dsa1()).unwrap();
        presets::one_swq_one_engine().validate(&DeviceCaps::dsa1()).unwrap();
    }

    #[test]
    fn preset_dwq_split_shares_storage() {
        let dc = presets::n_dwqs_n_engines(4);
        let total: u32 = dc.wqs.iter().map(|w| w.size).sum();
        assert!(total <= 128);
        assert_eq!(dc.wqs.len(), 4);
    }
}
