//! The simulated platform a user program runs against.
//!
//! [`DsaRuntime`] bundles everything one experiment needs: the platform
//! description, the byte store ([`Memory`]), the timing model
//! ([`MemSystem`]), one or more DSA instances, the software-baseline cost
//! model, and a global clock. The [`Job`](crate::job::Job) API drives it
//! the way DML drives real hardware.

use dsa_device::config::DeviceConfig;
use dsa_device::device::DsaDevice;
use dsa_mem::buffer::{Location, PageSize};
use dsa_mem::memory::{BufferHandle, MemError, Memory};
use dsa_mem::memsys::MemSystem;
use dsa_mem::topology::Platform;
use dsa_ops::swcost::SwCost;
use dsa_ops::OpKind;
use dsa_sim::rng::SplitMix64;
use dsa_sim::time::{SimDuration, SimTime};
use dsa_telemetry::Hub;

/// Builder for a [`DsaRuntime`].
#[derive(Debug)]
pub struct RuntimeBuilder {
    platform: Platform,
    device_configs: Vec<DeviceConfig>,
    page_size: PageSize,
}

impl RuntimeBuilder {
    /// Starts from a platform (usually [`Platform::spr`]).
    pub fn new(platform: Platform) -> RuntimeBuilder {
        RuntimeBuilder { platform, device_configs: Vec::new(), page_size: PageSize::Base4K }
    }

    /// Adds one DSA instance with `config`.
    pub fn device(mut self, config: DeviceConfig) -> RuntimeBuilder {
        self.device_configs.push(config);
        self
    }

    /// Adds `n` DSA instances sharing the same `config`.
    pub fn devices(mut self, n: usize, config: DeviceConfig) -> RuntimeBuilder {
        for _ in 0..n {
            self.device_configs.push(config.clone());
        }
        self
    }

    /// Default page size for allocations (paper Fig. 8).
    pub fn page_size(mut self, ps: PageSize) -> RuntimeBuilder {
        self.page_size = ps;
        self
    }

    /// Builds the runtime. At least one device is always present.
    pub fn build(mut self) -> DsaRuntime {
        if self.device_configs.is_empty() {
            self.device_configs.push(DeviceConfig::single_engine());
        }
        let memsys = MemSystem::new(self.platform.clone());
        let devices = self
            .device_configs
            .into_iter()
            .enumerate()
            .map(|(i, cfg)| DsaDevice::new(i as u16, cfg, &self.platform))
            .collect();
        DsaRuntime {
            swcost: SwCost::new(self.platform.clone()),
            platform: self.platform,
            memory: Memory::new(),
            memsys,
            devices,
            page_size: self.page_size,
            now: SimTime::ZERO,
            rng: SplitMix64::new(0xD5A0_5EED),
            hub: None,
        }
    }
}

/// The simulated platform: memory + devices + clock.
pub struct DsaRuntime {
    platform: Platform,
    memory: Memory,
    memsys: MemSystem,
    devices: Vec<DsaDevice>,
    swcost: SwCost,
    page_size: PageSize,
    now: SimTime,
    rng: SplitMix64,
    hub: Option<Hub>,
}

impl DsaRuntime {
    /// An SPR platform with one single-engine DSA (the paper's §4.1 setup).
    pub fn spr_default() -> DsaRuntime {
        RuntimeBuilder::new(Platform::spr()).device(DeviceConfig::single_engine()).build()
    }

    /// Starts a builder.
    pub fn builder(platform: Platform) -> RuntimeBuilder {
        RuntimeBuilder::new(platform)
    }

    /// The platform description.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The software-baseline cost model.
    pub fn swcost(&self) -> &SwCost {
        &self.swcost
    }

    /// Attaches a telemetry hub: every device emits descriptor lifecycle
    /// spans and metrics into it, and the job layer stitches job-level
    /// spans (prepare/submit/wait) on top.
    pub fn attach_hub(&mut self, hub: Hub) {
        for d in &mut self.devices {
            d.attach_hub(hub.clone());
        }
        self.hub = Some(hub);
    }

    /// Enables tracing with a fresh hub and returns a handle to it.
    pub fn trace(&mut self) -> Hub {
        let hub = Hub::default();
        self.attach_hub(hub.clone());
        hub
    }

    /// The attached telemetry hub, if any.
    pub fn hub(&self) -> Option<&Hub> {
        self.hub.as_ref()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the clock by `d`.
    pub fn advance(&mut self, d: SimDuration) {
        self.now += d;
    }

    /// Moves the clock forward to `t` (no-op if already past).
    pub fn advance_to(&mut self, t: SimTime) {
        self.now = self.now.max(t);
    }

    /// Sets the clock outright — for multi-agent harnesses that juggle
    /// per-core cursors and hand the runtime to whichever agent acts next.
    /// Drive agents in (approximately) time order: device resource
    /// timelines tolerate small reorderings but not wholesale rewinds.
    pub fn set_now(&mut self, t: SimTime) {
        self.now = t;
    }

    /// Number of DSA instances.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Access to device `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn device(&self, i: usize) -> &DsaDevice {
        &self.devices[i]
    }

    /// Mutable device access (used by the job layer).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn device_mut(&mut self, i: usize) -> &mut DsaDevice {
        &mut self.devices[i]
    }

    /// Rebuilds device `i` under a new configuration — the plan-transition
    /// path: a fresh device with empty WQs, as after a real drain +
    /// re-enable cycle. In-flight work must already be accounted for by
    /// the caller (the service layer quiesces to a barrier first). The
    /// attached hub, if any, carries over.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn replace_device(&mut self, i: usize, config: DeviceConfig) {
        assert!(i < self.devices.len(), "no device {i}");
        let mut d = DsaDevice::new(i as u16, config, &self.platform);
        if let Some(hub) = &self.hub {
            d.attach_hub(hub.clone());
        }
        self.devices[i] = d;
    }

    /// Destructured mutable access for submission paths that need the
    /// device, memory, and memory system simultaneously.
    pub(crate) fn parts(&mut self, dev: usize) -> (&mut DsaDevice, &mut Memory, &mut MemSystem) {
        (&mut self.devices[dev], &mut self.memory, &mut self.memsys)
    }

    /// Destructured mutable access to the byte store and timing model
    /// together, for external device models (e.g. the CBDMA backend) whose
    /// submission paths need both at once.
    pub fn mem_parts(&mut self) -> (&mut Memory, &mut MemSystem) {
        (&mut self.memory, &mut self.memsys)
    }

    /// The byte store.
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// Mutable byte store.
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.memory
    }

    /// The timing model.
    pub fn memsys(&self) -> &MemSystem {
        &self.memsys
    }

    /// Mutable timing model.
    pub fn memsys_mut(&mut self) -> &mut MemSystem {
        &mut self.memsys
    }

    /// Allocates a zeroed buffer and maps its pages.
    pub fn alloc(&mut self, len: u64, loc: Location) -> BufferHandle {
        let ps = self.page_size;
        self.alloc_with_pages(len, loc, ps)
    }

    /// Allocates with an explicit page size and maps its pages.
    pub fn alloc_with_pages(&mut self, len: u64, loc: Location, ps: PageSize) -> BufferHandle {
        let h = self.memory.alloc_with_pages(len, loc, ps);
        self.memsys.page_table_mut().map_range(h.addr(), len.max(1), ps);
        h
    }

    /// Fills a buffer with one byte value.
    pub fn fill_pattern(&mut self, buf: &BufferHandle, byte: u8) {
        self.memory
            .read_mut(buf.addr(), buf.len())
            // dsa-lint: allow(unwrap, handles come from this runtime's allocator, so the range is mapped)
            .expect("runtime-allocated buffer is mapped")
            .fill(byte);
    }

    /// Fills a buffer with reproducible pseudo-random bytes.
    pub fn fill_random(&mut self, buf: &BufferHandle) {
        let mut rng = self.rng.split();
        let slice = self
            .memory
            .read_mut(buf.addr(), buf.len())
            // dsa-lint: allow(unwrap, handles come from this runtime's allocator, so the range is mapped)
            .expect("runtime-allocated buffer is mapped");
        rng.fill_bytes(slice);
    }

    /// Reads buffer contents.
    ///
    /// # Errors
    ///
    /// Propagates [`MemError`] for invalid ranges.
    pub fn read(&self, buf: &BufferHandle) -> Result<&[u8], MemError> {
        self.memory.read(buf.addr(), buf.len())
    }

    /// Runs the *software* implementation of `kind` on the CPU: performs
    /// the work functionally and advances the clock by the calibrated
    /// software cost. Returns the elapsed software time.
    pub fn cpu_op(&mut self, kind: OpKind, src: &BufferHandle, dst: &BufferHandle) -> SimDuration {
        let bytes = src.len().max(dst.len());
        let src_loc = self.memory.location_of(src.addr()).unwrap_or(Location::local_dram());
        let dst_loc = self.memory.location_of(dst.addr()).unwrap_or(Location::local_dram());
        let t = self.swcost.op_time(kind, bytes, src_loc, dst_loc);
        match kind {
            OpKind::Memcpy => {
                self.memory.copy(src.addr(), dst.addr(), src.len().min(dst.len())).ok();
            }
            OpKind::Fill | OpKind::NtFill => {
                if let Ok(b) = self.memory.read_mut(dst.addr(), dst.len()) {
                    dsa_ops::memops::fill(b, 0);
                }
            }
            _ => {}
        }
        self.now += t;
        t
    }

    /// The calibrated software time for `kind` over `bytes` with explicit
    /// placements, without executing or advancing the clock.
    pub fn cpu_time(&self, kind: OpKind, bytes: u64, src: Location, dst: Location) -> SimDuration {
        self.swcost.op_time(kind, bytes, src, dst)
    }
}

impl std::fmt::Debug for DsaRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DsaRuntime")
            .field("platform", &self.platform.name)
            .field("devices", &self.devices.len())
            .field("now", &self.now)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_runtime_has_one_device() {
        let rt = DsaRuntime::spr_default();
        assert_eq!(rt.device_count(), 1);
        assert_eq!(rt.platform().name, "SPR");
    }

    #[test]
    fn builder_adds_devices() {
        let rt =
            DsaRuntime::builder(Platform::spr()).devices(4, DeviceConfig::single_engine()).build();
        assert_eq!(rt.device_count(), 4);
    }

    #[test]
    fn empty_builder_gets_default_device() {
        let rt = DsaRuntime::builder(Platform::spr()).build();
        assert_eq!(rt.device_count(), 1);
    }

    #[test]
    fn alloc_maps_pages() {
        let mut rt = DsaRuntime::spr_default();
        let b = rt.alloc(10_000, Location::local_dram());
        assert!(rt.memsys().page_table().is_present(b.addr()));
        assert!(rt.memsys().page_table().is_present(b.addr() + 9_999));
    }

    #[test]
    fn fill_helpers_work() {
        let mut rt = DsaRuntime::spr_default();
        let b = rt.alloc(64, Location::local_dram());
        rt.fill_pattern(&b, 0x5A);
        assert!(rt.read(&b).unwrap().iter().all(|&x| x == 0x5A));
        rt.fill_random(&b);
        assert!(rt.read(&b).unwrap().iter().any(|&x| x != 0x5A));
    }

    #[test]
    fn clock_advances() {
        let mut rt = DsaRuntime::spr_default();
        rt.advance(SimDuration::from_us(3));
        assert_eq!(rt.now(), SimTime::from_us(3));
        rt.advance_to(SimTime::from_us(2));
        assert_eq!(rt.now(), SimTime::from_us(3), "advance_to never rewinds");
    }

    #[test]
    fn cpu_op_copies_and_charges_time() {
        let mut rt = DsaRuntime::spr_default();
        let a = rt.alloc(4096, Location::local_dram());
        let b = rt.alloc(4096, Location::local_dram());
        rt.fill_pattern(&a, 9);
        let t = rt.cpu_op(OpKind::Memcpy, &a, &b);
        assert!(t.as_ns_f64() > 100.0);
        assert_eq!(rt.now(), SimTime::ZERO + t);
        assert!(rt.read(&b).unwrap().iter().all(|&x| x == 9));
    }

    #[test]
    fn huge_page_allocation() {
        let mut rt = DsaRuntime::builder(Platform::spr()).page_size(PageSize::Huge2M).build();
        let b = rt.alloc(100, Location::local_dram());
        assert_eq!(rt.memory().page_size_of(b.addr()).unwrap(), PageSize::Huge2M);
    }
}
