//! Core-side submission and completion-wait models.
//!
//! The paper's §3.3 describes the new x86 instructions DSA relies on:
//!
//! * `MOVDIR64B` — posted 64-byte store to a dedicated WQ portal: the core
//!   pays a short, fixed cost and moves on;
//! * `ENQCMD`/`ENQCMDS` — *non-posted* submission to a shared WQ: the core
//!   stalls for a round trip and receives an accepted/retry status, which
//!   is why a single thread submits slower to an SWQ (Fig. 9) but many
//!   threads need no software lock;
//! * `UMONITOR`/`UMWAIT` — user-space optimized wait: the core sleeps in a
//!   low-power state until the completion record is written (Fig. 11).

use dsa_sim::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// How descriptors reach the device.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SubmitMethod {
    /// Posted 64-byte store (dedicated WQs).
    Movdir64b,
    /// Non-posted enqueue with accept/retry status (shared WQs).
    Enqcmd,
}

impl SubmitMethod {
    /// Core-visible cost of issuing one submission. For `ENQCMD` this is
    /// the *base* round trip; device-port queueing is added by the job
    /// layer via [`DsaDevice::enqcmd_accept`].
    ///
    /// [`DsaDevice::enqcmd_accept`]: dsa_device::device::DsaDevice::enqcmd_accept
    pub fn core_cost(self) -> SimDuration {
        match self {
            // WC-buffer fill + flush of one cache line.
            SubmitMethod::Movdir64b => SimDuration::from_ns(55),
            // Non-posted round trip through the on-die fabric.
            SubmitMethod::Enqcmd => SimDuration::from_ns(160),
        }
    }

    /// True if the instruction returns before the device accepts.
    pub fn is_posted(self) -> bool {
        matches!(self, SubmitMethod::Movdir64b)
    }
}

/// How the core learns about completion.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WaitMethod {
    /// Busy-poll the completion record.
    SpinPoll,
    /// `UMONITOR`+`UMWAIT` on the completion record address.
    Umwait,
    /// Completion interrupt (§4.4 mentions it as the alternative).
    Interrupt,
}

/// Outcome of waiting for one completion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitReport {
    /// When the core observed the completion.
    pub observed_at: SimTime,
    /// Core time spent actively busy (polling, wake-up processing).
    pub busy: SimDuration,
    /// Core time spent in the optimized-wait state (or truly idle for
    /// interrupts) — the "cycles spent on the UMWAIT intrinsic" of Fig. 11.
    pub idle: SimDuration,
}

/// Fixed poll-detect granularity for spin polling.
const POLL_DETECT: SimDuration = SimDuration::from_ns(20);
/// Cost to arm UMONITOR and enter UMWAIT.
const UMWAIT_ARM: SimDuration = SimDuration::from_ns(30);
/// Wake-up latency out of the optimized wait state.
const UMWAIT_WAKE: SimDuration = SimDuration::from_ns(100);
/// Interrupt delivery plus handler dispatch.
const INTERRUPT_LATENCY: SimDuration = SimDuration::from_us(2);

impl WaitMethod {
    /// Waits from `from` until the device completion at `completion`
    /// becomes visible.
    pub fn wait(self, from: SimTime, completion: SimTime) -> WaitReport {
        let span = completion.saturating_duration_since(from);
        match self {
            WaitMethod::SpinPoll => WaitReport {
                observed_at: completion + POLL_DETECT,
                busy: span + POLL_DETECT,
                idle: SimDuration::ZERO,
            },
            WaitMethod::Umwait => {
                let idle = span - UMWAIT_ARM.min(span);
                WaitReport {
                    observed_at: completion + UMWAIT_WAKE,
                    busy: UMWAIT_ARM.min(span) + UMWAIT_WAKE,
                    idle,
                }
            }
            WaitMethod::Interrupt => WaitReport {
                observed_at: completion + INTERRUPT_LATENCY,
                busy: SimDuration::ZERO,
                idle: span + INTERRUPT_LATENCY,
            },
        }
    }
}

/// A depth-bounded FIFO window of in-flight operations — the one inflight
/// bookkeeping primitive behind every asynchronous submission surface:
/// [`AsyncQueue`](crate::job::AsyncQueue) (raw job streaming), the
/// [`Dispatcher`](crate::dispatch::Dispatcher) async path, and the service
/// layer's per-tenant sessions all reap through this type, so queue-depth
/// semantics ("depth 32 unless otherwise stated", §4.1) are defined in
/// exactly one place.
///
/// Entries carry their device-side completion time; the *caller* advances
/// the runtime clock when it decides to block on a slot, keeping this type
/// free of runtime coupling.
#[derive(Clone, Debug)]
pub struct InflightWindow<T> {
    depth: usize,
    entries: VecDeque<(SimTime, T)>,
    retired: u64,
    last_completion: SimTime,
}

impl<T> InflightWindow<T> {
    /// A window admitting up to `depth` concurrent operations.
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0`.
    pub fn new(depth: usize) -> InflightWindow<T> {
        assert!(depth > 0, "window depth must be positive");
        InflightWindow {
            depth,
            entries: VecDeque::with_capacity(depth),
            retired: 0,
            last_completion: SimTime::ZERO,
        }
    }

    /// The configured depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Operations currently tracked.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when no slot is free.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.depth
    }

    /// Tracks an operation that completes at `completion`.
    ///
    /// # Panics
    ///
    /// Panics if the window is full — pop an entry first.
    pub fn push(&mut self, completion: SimTime, item: T) {
        assert!(!self.is_full(), "inflight window over depth");
        self.entries.push_back((completion, item));
    }

    /// Completion time of the oldest in-flight operation.
    pub fn oldest_completion(&self) -> Option<SimTime> {
        self.entries.front().map(|&(t, _)| t)
    }

    /// Earliest instant a new operation could be admitted: `now` when a
    /// slot is free, otherwise when the oldest entry completes (FIFO reap).
    pub fn admission_at(&self, now: SimTime) -> SimTime {
        if self.is_full() {
            self.oldest_completion().unwrap_or(now).max(now)
        } else {
            now
        }
    }

    /// Pops the oldest entry regardless of completion state. The caller is
    /// expected to advance its clock to the returned completion time.
    pub fn pop_oldest(&mut self) -> Option<(SimTime, T)> {
        let (t, item) = self.entries.pop_front()?;
        self.retire_at(t);
        Some((t, item))
    }

    /// Pops the oldest entry only if it has completed by `now`
    /// (opportunistic completion-record checking).
    pub fn pop_completed(&mut self, now: SimTime) -> Option<(SimTime, T)> {
        if self.oldest_completion()? <= now {
            self.pop_oldest()
        } else {
            None
        }
    }

    fn retire_at(&mut self, completion: SimTime) {
        self.retired += 1;
        self.last_completion = self.last_completion.max(completion);
    }

    /// Operations retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Latest completion time among retired operations.
    pub fn last_completion(&self) -> SimTime {
        self.last_completion
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_ns(ns)
    }

    #[test]
    fn movdir_is_cheap_and_posted() {
        assert!(SubmitMethod::Movdir64b.core_cost() < SubmitMethod::Enqcmd.core_cost());
        assert!(SubmitMethod::Movdir64b.is_posted());
        assert!(!SubmitMethod::Enqcmd.is_posted());
    }

    #[test]
    fn spin_poll_burns_the_whole_wait() {
        let r = WaitMethod::SpinPoll.wait(t(0), t(1000));
        assert_eq!(r.idle, SimDuration::ZERO);
        assert!(r.busy >= SimDuration::from_ns(1000));
        assert!(r.observed_at >= t(1000));
    }

    #[test]
    fn umwait_sleeps_most_of_the_wait() {
        let r = WaitMethod::Umwait.wait(t(0), t(10_000));
        assert!(r.idle > SimDuration::from_ns(9_000));
        assert!(r.busy < SimDuration::from_ns(200));
        // Slower to observe than spinning (wake-up latency).
        let spin = WaitMethod::SpinPoll.wait(t(0), t(10_000));
        assert!(r.observed_at > spin.observed_at);
    }

    #[test]
    fn umwait_short_wait_has_no_negative_idle() {
        let r = WaitMethod::Umwait.wait(t(0), t(10));
        assert_eq!(r.idle, SimDuration::ZERO);
    }

    #[test]
    fn interrupt_frees_the_core_but_is_slow() {
        let r = WaitMethod::Interrupt.wait(t(0), t(1000));
        assert_eq!(r.busy, SimDuration::ZERO);
        assert!(r.observed_at >= t(1000) + SimDuration::from_us(2));
    }

    #[test]
    fn completion_already_visible() {
        let r = WaitMethod::SpinPoll.wait(t(5000), t(1000));
        assert!(r.busy <= POLL_DETECT + SimDuration::from_ns(1));
        assert!(r.observed_at >= t(1000));
    }

    #[test]
    fn window_enforces_depth_and_fifo_reap() {
        let mut w = InflightWindow::new(2);
        assert_eq!(w.admission_at(t(5)), t(5), "empty window admits now");
        w.push(t(100), "a");
        w.push(t(300), "b");
        assert!(w.is_full());
        // Full: admission waits for the oldest completion.
        assert_eq!(w.admission_at(t(5)), t(100));
        // Nothing completed yet at t=50.
        assert!(w.pop_completed(t(50)).is_none());
        assert_eq!(w.pop_completed(t(150)), Some((t(100), "a")));
        assert_eq!(w.pop_oldest(), Some((t(300), "b")));
        assert_eq!(w.retired(), 2);
        assert_eq!(w.last_completion(), t(300));
        assert!(w.is_empty());
    }

    #[test]
    #[should_panic(expected = "over depth")]
    fn window_rejects_overfill() {
        let mut w = InflightWindow::new(1);
        w.push(t(1), ());
        w.push(t(2), ());
    }
}
