//! The workspace's one replay-digest primitive.
//!
//! Every determinism claim in this repository reduces to "two runs fold
//! the same FNV-1a 64-bit value". Before this module the hasher existed
//! three times — inline in `ServiceReport::digest`, as a test helper in
//! the scheduler-equivalence suite, and as an awk reimplementation in
//! `scripts/perfgate` — and the fleet layer would have added a fourth.
//! Now there is exactly one [`Fnv1a`] plus a [`Digestible`] trait for
//! anything that wants a canonical digest, and
//! [`merge_in_order`] composes per-shard digests into a fleet digest in
//! shard order (the merged value is what the parallel-determinism proof
//! pins).
//!
//! FNV-1a is deliberate: cheap, dependency-free, stable across platforms
//! and Rust versions, so a digest recorded in EXPERIMENTS.md or a
//! `BENCH_*.json` artifact stays comparable bit-for-bit forever.

/// An incremental FNV-1a 64-bit hasher.
///
/// ```
/// use dsa_core::digest::Fnv1a;
/// let mut h = Fnv1a::new();
/// h.write(b"hello");
/// let a = h.finish();
/// assert_eq!(a, Fnv1a::digest(b"hello"));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A hasher at the FNV offset basis.
    pub fn new() -> Fnv1a {
        Fnv1a(Self::OFFSET)
    }

    /// Folds `bytes` into the hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// `PRIME^n mod 2^64` for `n` in `0..=8`: xor-ing a zero byte leaves
    /// the state unchanged, so a run of `n` trailing zero bytes folds into
    /// one multiply by `PRIME^n`.
    const PRIME_POW: [u64; 9] = {
        let mut p = [1u64; 9];
        let mut i = 1;
        while i < 9 {
            p[i] = p[i - 1].wrapping_mul(Fnv1a::PRIME);
            i += 1;
        }
        p
    };

    /// Folds one little-endian `u64` into the hash.
    ///
    /// Bit-identical to `write(&v.to_le_bytes())`, but high zero bytes —
    /// the common case for times, sequence numbers, and small payload
    /// fields — collapse into a single multiply instead of eight
    /// xor-multiply rounds.
    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        let nz = (8 - v.leading_zeros() / 8) as usize;
        let mut x = v;
        for _ in 0..nz {
            self.0 ^= x & 0xff;
            self.0 = self.0.wrapping_mul(Self::PRIME);
            x >>= 8;
        }
        self.0 = self.0.wrapping_mul(Self::PRIME_POW[8 - nz]);
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }

    /// One-shot convenience.
    pub fn digest(bytes: &[u8]) -> u64 {
        let mut h = Fnv1a::new();
        h.write(bytes);
        h.finish()
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

/// Something with a canonical byte-stable digest representation.
///
/// Implementors fold their canonical form into the hasher; `digest64`
/// provides the one-number replay check every report type exposes.
pub trait Digestible {
    /// Folds the canonical representation into `h`.
    fn fold(&self, h: &mut Fnv1a);

    /// The standalone FNV-1a digest of this value.
    fn digest64(&self) -> u64 {
        let mut h = Fnv1a::new();
        self.fold(&mut h);
        h.finish()
    }
}

/// Composes per-part digests into one, folding `(index, digest)` pairs in
/// slice order. This is the fleet merge rule: shard digests combined in
/// shard order, so the K-thread run and the sequential replay agree iff
/// every shard agrees — and a shard permutation cannot collide.
pub fn merge_in_order(digests: &[u64]) -> u64 {
    let mut h = Fnv1a::new();
    for (i, &d) in digests.iter().enumerate() {
        h.write_u64(i as u64);
        h.write_u64(d);
    }
    h.finish()
}

/// Renders a digest exactly as the `BENCH_*.json` artifacts and
/// EXPERIMENTS.md record it: `0x`-prefixed, zero-padded to 16 hex digits.
pub fn hex(digest: u64) -> String {
    format!("{digest:#018x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_write_u64_fast_path_is_bit_identical() {
        use dsa_sim::rng::SplitMix64;
        let bytewise = |v: u64| {
            let mut h = Fnv1a::new();
            h.write(&v.to_le_bytes());
            h.finish()
        };
        let fast = |v: u64| {
            let mut h = Fnv1a::new();
            h.write_u64(v);
            h.finish()
        };
        for v in [0, 1, 0xff, 0x100, u64::MAX, u64::MAX >> 1, 1 << 63, 0x0102_0304_0506_0708] {
            assert_eq!(fast(v), bytewise(v), "v = {v:#x}");
        }
        let mut rng = SplitMix64::new(7);
        for _ in 0..10_000 {
            let v = rng.next_u64() >> (rng.next_u64() % 64);
            assert_eq!(fast(v), bytewise(v), "v = {v:#x}");
        }
    }

    #[test]
    fn known_vector() {
        // FNV-1a("") is the offset basis; "a" is a published test vector.
        assert_eq!(Fnv1a::digest(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(Fnv1a::digest(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn merge_is_order_sensitive() {
        let a = merge_in_order(&[1, 2, 3]);
        let b = merge_in_order(&[3, 2, 1]);
        assert_ne!(a, b, "shard order must be part of the merged digest");
        assert_eq!(a, merge_in_order(&[1, 2, 3]));
    }

    #[test]
    fn merge_distinguishes_empty_prefixes() {
        assert_ne!(merge_in_order(&[]), merge_in_order(&[0]));
        assert_ne!(merge_in_order(&[0]), merge_in_order(&[0, 0]));
    }

    #[test]
    fn hex_matches_artifact_convention() {
        assert_eq!(hex(0x1234), "0x0000000000001234");
        assert_eq!(hex(u64::MAX), "0xffffffffffffffff");
    }

    #[test]
    fn digestible_default_digest64() {
        struct Tag(u64);
        impl Digestible for Tag {
            fn fold(&self, h: &mut Fnv1a) {
                h.write_u64(self.0);
            }
        }
        let mut h = Fnv1a::new();
        h.write_u64(42);
        assert_eq!(Tag(42).digest64(), h.finish());
    }
}
