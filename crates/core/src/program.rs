//! Compiled op programs — the zero-allocation prepare/step layer.
//!
//! The paper's guidance on offload overhead (Fig. 5) is blunt: descriptor
//! *allocation* dominates the software side of an offload, and real
//! deployments amortize it by pre-allocating descriptors once and reusing
//! them per submission. This module is that idea as an API. A
//! [`ProgramBuilder`] **compiles** workload configuration — op kind,
//! operand addresses and sizes, placement (device/WQ), and fault policy —
//! into a flat [`OpProgram`] of fixed-width [`OpInstr`] words, validating
//! every resulting descriptor against the device's
//! [`DeviceCaps`](dsa_device::config::DeviceCaps) exactly once, at
//! [`prepare`](ProgramBuilder::prepare) time.
//!
//! Replay then touches no heap: [`OpProgram::fetch`] rebuilds one pooled
//! [`Descriptor`] slot in place ([`Descriptor::rebuild`] resets every
//! field, so nothing leaks between instructions), and
//! [`OpProgram::step`]/[`Job::from_instr`]/[`Batch::push_instr`]/
//! [`Dispatcher::run_program`](crate::dispatch::Dispatcher::run_program)
//! drive submission from those slots. Because the rebuilt descriptor is
//! field-for-field identical to one built by the `Descriptor`
//! constructors, every execution digest is bit-identical to the
//! allocate-per-job path it replaces.
//!
//! ```
//! use dsa_core::prelude::*;
//! use dsa_mem::buffer::Location;
//!
//! let mut rt = DsaRuntime::spr_default();
//! let src = rt.alloc(4096, Location::local_dram());
//! let dst = rt.alloc(4096, Location::local_dram());
//! rt.fill_pattern(&src, 7);
//!
//! // Compile once…
//! let mut prog = ProgramBuilder::new().memcpy(&src, &dst).crc32(&dst).prepare(&rt)?;
//! // …replay with no steady-state allocation.
//! for _ in 0..3 {
//!     prog.rewind();
//!     prog.run(&mut rt)?;
//! }
//! assert_eq!(rt.read(&dst).unwrap().len(), 4096);
//! # Ok::<(), dsa_core::DsaError>(())
//! ```

use crate::backend::OffloadRequest;
use crate::error::DsaError;
use crate::job::{Job, JobReport};
use crate::runtime::DsaRuntime;
use dsa_device::descriptor::{Descriptor, Flags, OpParams, Opcode};
use dsa_device::device::SubmitError;
use dsa_mem::memory::BufferHandle;
use dsa_ops::dif::DifConfig;

/// One fixed-width compiled instruction: a descriptor's worth of operands
/// plus placement, flattened into plain words so a program is a dense
/// `Vec<OpInstr>` with no per-instruction heap cells.
///
/// The operation-specific [`OpParams`] collapse into two scalar operand
/// words (`operand`, `operand2`) using the opcode to pick the layout —
/// the same trick as the 64-byte wire format's bytes 40..52.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpInstr {
    /// Operation code.
    pub opcode: Opcode,
    /// Raw descriptor flag bits ([`Flags::bits`]).
    pub flag_bits: u32,
    /// Source address (0 when unused).
    pub src: u64,
    /// Destination address (0 when unused).
    pub dst: u64,
    /// Transfer size in bytes.
    pub len: u32,
    /// First operand word: pattern, second destination, delta record
    /// address, or packed DIF config, per the opcode.
    pub operand: u64,
    /// Second operand word: CRC seed or delta max-size, per the opcode.
    pub operand2: u32,
    /// Completion-record address (0 = none).
    pub completion: u64,
    /// Target device index.
    pub device: u16,
    /// Target WQ index on that device.
    pub wq: u16,
}

impl OpInstr {
    /// Compiles a descriptor (plus placement) into an instruction word.
    /// Lossless: [`descriptor`](Self::descriptor) inverts it exactly.
    pub fn from_descriptor(desc: &Descriptor, device: u16, wq: u16) -> OpInstr {
        let (operand, operand2) = match &desc.params {
            OpParams::None => (0, 0),
            OpParams::Pattern(p) => (*p, 0),
            OpParams::Dest2(d) => (*d, 0),
            OpParams::CrcSeed(s) => (0, *s),
            OpParams::Delta { record_addr, max_size } => (*record_addr, *max_size),
            OpParams::Dif(cfg) => (cfg.pack(), 0),
        };
        OpInstr {
            opcode: desc.opcode,
            flag_bits: desc.flags.bits(),
            src: desc.src,
            dst: desc.dst,
            len: desc.xfer_size,
            operand,
            operand2,
            completion: desc.completion_addr,
            device,
            wq,
        }
    }

    /// Recovers the operation-specific params from the operand words,
    /// using the opcode to pick the layout. Total: the decode is
    /// infallible for every opcode (DIF configs unpack totally).
    pub fn params(&self) -> OpParams {
        match self.opcode {
            Opcode::Fill | Opcode::ComparePattern => OpParams::Pattern(self.operand),
            Opcode::Dualcast => OpParams::Dest2(self.operand),
            Opcode::CrcGen | Opcode::CopyCrc => OpParams::CrcSeed(self.operand2),
            Opcode::CreateDelta | Opcode::ApplyDelta => {
                OpParams::Delta { record_addr: self.operand, max_size: self.operand2 }
            }
            Opcode::DifCheck | Opcode::DifInsert | Opcode::DifStrip | Opcode::DifUpdate => {
                OpParams::Dif(DifConfig::unpack(self.operand))
            }
            _ => OpParams::None,
        }
    }

    /// Materializes a fresh descriptor (allocation-free: every `OpParams`
    /// variant is plain data).
    pub fn descriptor(&self) -> Descriptor {
        let mut d = Descriptor::nop();
        self.write_into(&mut d);
        d
    }

    /// Refills a pooled descriptor slot in place — the per-step hot path.
    /// Produces exactly the descriptor this instruction was compiled from,
    /// regardless of what the slot held before.
    pub fn write_into(&self, slot: &mut Descriptor) {
        slot.rebuild(self.opcode, self.src, self.dst, self.len, self.params());
        slot.flags = Flags::from_bits(self.flag_bits);
        slot.completion_addr = self.completion;
    }

    /// The instruction as a backend-neutral [`OffloadRequest`], so policy
    /// layers (the [`Dispatcher`](crate::dispatch::Dispatcher)) can route
    /// it to the CPU as readily as to the device. Operand handles mirror
    /// the request constructors: fill aliases `dst` for both operands,
    /// CRC aliases `src`.
    pub fn offload_request(&self) -> OffloadRequest {
        let len = u64::from(self.len);
        let src = BufferHandle::from_raw(self.src, len);
        let dst = BufferHandle::from_raw(self.dst, len);
        let (src, dst) = match self.opcode {
            Opcode::Fill => (dst, dst),
            Opcode::CrcGen => (src, src),
            _ => (src, dst),
        };
        let pattern = match self.opcode {
            Opcode::Fill | Opcode::ComparePattern => self.operand,
            _ => 0,
        };
        OffloadRequest {
            op: self.opcode.op_kind(),
            src,
            dst,
            pattern,
            cache_control: Flags::from_bits(self.flag_bits).contains(Flags::CACHE_CONTROL),
        }
    }
}

/// Compiles workload configuration into an [`OpProgram`].
///
/// Placement (`on_device`/`on_wq`) and policy flags (`cache_control`,
/// `block_on_fault`) apply to every *data* operation pushed after them;
/// `nop`/`drain` never take cache control (the spec reserves it). The
/// terminal [`prepare`](Self::prepare) validates each compiled descriptor
/// against the target device's capabilities, so replay never pays a
/// validation-failure surprise mid-stream.
#[derive(Clone, Debug, Default)]
pub struct ProgramBuilder {
    device: u16,
    wq: u16,
    cache_control: bool,
    block_on_fault: bool,
    instrs: Vec<OpInstr>,
}

impl ProgramBuilder {
    /// An empty program targeting device 0, WQ 0.
    pub fn new() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// Targets device `i` for subsequently pushed operations.
    pub fn on_device(mut self, i: usize) -> ProgramBuilder {
        self.device = i as u16;
        self
    }

    /// Targets WQ `i` for subsequently pushed operations.
    pub fn on_wq(mut self, i: usize) -> ProgramBuilder {
        self.wq = i as u16;
        self
    }

    /// Steers destination writes of subsequent data ops into the LLC (G3).
    pub fn cache_control(mut self, on: bool) -> ProgramBuilder {
        self.cache_control = on;
        self
    }

    /// Fault policy for subsequent data ops: block on page faults instead
    /// of partially completing.
    pub fn block_on_fault(mut self, on: bool) -> ProgramBuilder {
        self.block_on_fault = on;
        self
    }

    fn push_data_op(&mut self, mut d: Descriptor) {
        d.set_cache_control(self.cache_control);
        d.set_block_on_fault(self.block_on_fault);
        self.instrs.push(OpInstr::from_descriptor(&d, self.device, self.wq));
    }

    /// Appends a pre-built descriptor verbatim (no policy flags applied) —
    /// the escape hatch for op shapes without a dedicated pusher.
    pub fn push_descriptor(mut self, d: &Descriptor) -> ProgramBuilder {
        self.instrs.push(OpInstr::from_descriptor(d, self.device, self.wq));
        self
    }

    /// Appends a no-op (offload-overhead probes).
    pub fn nop(mut self) -> ProgramBuilder {
        self.instrs.push(OpInstr::from_descriptor(&Descriptor::nop(), self.device, self.wq));
        self
    }

    /// Appends a drain barrier.
    pub fn drain(mut self) -> ProgramBuilder {
        self.instrs.push(OpInstr::from_descriptor(&Descriptor::drain(), self.device, self.wq));
        self
    }

    /// Appends a memory copy.
    pub fn memcpy(mut self, src: &BufferHandle, dst: &BufferHandle) -> ProgramBuilder {
        let len = src.len().min(dst.len()) as u32;
        self.push_data_op(Descriptor::memmove(src.addr(), dst.addr(), len));
        self
    }

    /// Appends a fill with an 8-byte pattern.
    pub fn fill(mut self, dst: &BufferHandle, pattern: u64) -> ProgramBuilder {
        self.push_data_op(Descriptor::fill(dst.addr(), dst.len() as u32, pattern));
        self
    }

    /// Appends a memory compare.
    pub fn compare(mut self, a: &BufferHandle, b: &BufferHandle) -> ProgramBuilder {
        let len = a.len().min(b.len()) as u32;
        self.push_data_op(Descriptor::compare(a.addr(), b.addr(), len));
        self
    }

    /// Appends a compare against an 8-byte pattern.
    pub fn compare_pattern(mut self, buf: &BufferHandle, pattern: u64) -> ProgramBuilder {
        self.push_data_op(Descriptor::compare_pattern(buf.addr(), buf.len() as u32, pattern));
        self
    }

    /// Appends a CRC32-C generation over `src`.
    pub fn crc32(mut self, src: &BufferHandle) -> ProgramBuilder {
        self.push_data_op(Descriptor::crc_gen(src.addr(), src.len() as u32));
        self
    }

    /// Appends a copy-with-CRC.
    pub fn copy_crc(mut self, src: &BufferHandle, dst: &BufferHandle) -> ProgramBuilder {
        let len = src.len().min(dst.len()) as u32;
        self.push_data_op(Descriptor::copy_crc(src.addr(), dst.addr(), len));
        self
    }

    /// Appends a dualcast to two destinations.
    pub fn dualcast(
        mut self,
        src: &BufferHandle,
        dst1: &BufferHandle,
        dst2: &BufferHandle,
    ) -> ProgramBuilder {
        self.push_data_op(Descriptor::dualcast(
            src.addr(),
            dst1.addr(),
            dst2.addr(),
            src.len() as u32,
        ));
        self
    }

    /// Appends a DIF insert from raw blocks in `src` to protected blocks
    /// in `dst`.
    pub fn dif_insert(
        mut self,
        src: &BufferHandle,
        dst: &BufferHandle,
        cfg: DifConfig,
    ) -> ProgramBuilder {
        self.push_data_op(Descriptor::dif_insert(src.addr(), dst.addr(), src.len() as u32, cfg));
        self
    }

    /// Appends a cache flush over `buf`.
    pub fn cache_flush(mut self, buf: &BufferHandle) -> ProgramBuilder {
        self.push_data_op(Descriptor::cache_flush(buf.addr(), buf.len() as u32));
        self
    }

    /// Number of instructions compiled so far.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True when nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Compiles the program: checks placement against `rt`'s topology and
    /// validates every instruction's descriptor against the target
    /// device's capabilities — the one-time cost that buys allocation- and
    /// validation-free replay.
    ///
    /// # Errors
    ///
    /// [`DsaError::UnknownDevice`]/[`DsaError::Submit`] for placement
    /// outside the topology; [`DsaError::Descriptor`] for the first
    /// instruction whose descriptor fails spec conformance.
    pub fn prepare(self, rt: &DsaRuntime) -> Result<OpProgram, DsaError> {
        let mut slot = Descriptor::nop();
        for i in &self.instrs {
            let device = i.device as usize;
            if device >= rt.device_count() {
                return Err(DsaError::UnknownDevice { device });
            }
            let dev = rt.device(device);
            if i.wq as usize >= dev.wq_count() {
                return Err(DsaError::Submit(SubmitError::UnknownWq { wq: i.wq as usize }));
            }
            i.write_into(&mut slot);
            slot.validate(dev.caps())?;
        }
        Ok(OpProgram { instrs: self.instrs, pc: 0, slot })
    }
}

/// A compiled, validated program plus its single pooled descriptor slot.
///
/// Execution state is just the program counter; [`rewind`](Self::rewind)
/// makes the program reusable across replays without reallocation.
#[derive(Clone, Debug)]
pub struct OpProgram {
    instrs: Vec<OpInstr>,
    pc: usize,
    slot: Descriptor,
}

impl OpProgram {
    /// Total instruction count.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True for an empty program.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The program counter: index of the next instruction to fetch.
    pub fn pc(&self) -> usize {
        self.pc
    }

    /// Instructions left before the program is exhausted.
    pub fn remaining(&self) -> usize {
        self.instrs.len() - self.pc
    }

    /// Resets the program counter for another replay.
    pub fn rewind(&mut self) {
        self.pc = 0;
    }

    /// The compiled instructions.
    pub fn instrs(&self) -> &[OpInstr] {
        &self.instrs
    }

    /// The pooled descriptor slot as last filled by
    /// [`fetch`](Self::fetch).
    pub fn slot(&self) -> &Descriptor {
        &self.slot
    }

    /// Fetches the next instruction: advances the program counter and
    /// refills the pooled slot in place. Returns `None` once exhausted.
    /// Allocation-free.
    pub fn fetch(&mut self) -> Option<OpInstr> {
        let i = *self.instrs.get(self.pc)?;
        self.pc += 1;
        i.write_into(&mut self.slot);
        Some(i)
    }

    /// Executes one instruction synchronously (submit, spin-poll, advance
    /// the clock), returning its report — or `Ok(None)` when the program
    /// is exhausted.
    ///
    /// # Errors
    ///
    /// Propagates submission failures; the program counter has already
    /// advanced past the failing instruction.
    pub fn step(&mut self, rt: &mut DsaRuntime) -> Result<Option<JobReport>, DsaError> {
        let Some(i) = self.fetch() else {
            return Ok(None);
        };
        Job::from_instr(&i).execute(rt).map(Some)
    }

    /// Runs every remaining instruction synchronously; returns how many
    /// executed.
    ///
    /// # Errors
    ///
    /// Stops at and propagates the first failure.
    pub fn run(&mut self, rt: &mut DsaRuntime) -> Result<u64, DsaError> {
        let mut n = 0;
        while self.step(rt)?.is_some() {
            n += 1;
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsa_device::descriptor::Status;
    use dsa_mem::buffer::Location;
    use dsa_ops::dif::DifBlockSize;

    fn desc_shapes() -> Vec<Descriptor> {
        let cfg = DifConfig { block: DifBlockSize::B512, app_tag: 3, starting_ref_tag: 17 };
        vec![
            Descriptor::nop(),
            Descriptor::drain(),
            Descriptor::memmove(0x1000, 0x2000, 4096),
            Descriptor::fill(0x1000, 4096, 0xAB),
            Descriptor::compare(0x1000, 0x2000, 4096),
            Descriptor::compare_pattern(0x1000, 4096, 0xCD),
            Descriptor::crc_gen(0x1000, 4096).with_completion_addr(0x40),
            Descriptor::copy_crc(0x1000, 0x2000, 4096),
            Descriptor::dualcast(0x1000, 0x2000, 0x4000, 4096),
            Descriptor::delta_create(0x1000, 0x2000, 4096, 0x3000, 1024),
            Descriptor::delta_apply(0x3000, 256, 0x2000, 4096),
            Descriptor::dif_insert(0x1000, 0x2000, 1024, cfg),
            Descriptor::dif_check(0x1000, 1040, cfg),
            Descriptor::cache_flush(0x1000, 4096).with_cache_control().with_block_on_fault(),
        ]
    }

    #[test]
    fn instr_roundtrips_every_descriptor_shape() {
        for d in desc_shapes() {
            let i = OpInstr::from_descriptor(&d, 1, 2);
            assert_eq!(i.descriptor(), d, "{:?}", d.opcode);
            assert_eq!(i.device, 1);
            assert_eq!(i.wq, 2);
            // Pooled-slot rebuild from a dirty slot matches too.
            let mut slot = Descriptor::dualcast(9, 8, 0x7000, 7).with_completion_addr(0x20);
            i.write_into(&mut slot);
            assert_eq!(slot, d);
        }
    }

    #[test]
    fn prepare_validates_against_device_caps() {
        let rt = DsaRuntime::spr_default();
        // A compiled delta op with a misaligned size must fail at prepare,
        // not at replay.
        let bad = Descriptor::delta_create(0x1000, 0x2000, 100, 0x3000, 64);
        let err = ProgramBuilder::new().push_descriptor(&bad).prepare(&rt).unwrap_err();
        assert!(matches!(err, DsaError::Descriptor(_)), "{err:?}");
        // Placement outside the topology fails too.
        let err = ProgramBuilder::new().on_device(9).nop().prepare(&rt).unwrap_err();
        assert_eq!(err, DsaError::UnknownDevice { device: 9 });
        let err = ProgramBuilder::new().on_wq(99).nop().prepare(&rt).unwrap_err();
        assert!(matches!(err, DsaError::Submit(_)));
    }

    #[test]
    fn program_replay_matches_job_path_results() {
        // The compiled path and the per-job path must produce identical
        // data movement and identical clocks for the same op sequence.
        let mut rt_prog = DsaRuntime::spr_default();
        let mut rt_jobs = DsaRuntime::spr_default();
        let bufs = |rt: &mut DsaRuntime| {
            let src = rt.alloc(8192, Location::local_dram());
            let dst = rt.alloc(8192, Location::local_dram());
            rt.fill_pattern(&src, 0x5A);
            (src, dst)
        };
        let (ps, pd) = bufs(&mut rt_prog);
        let (js, jd) = bufs(&mut rt_jobs);

        let mut prog = ProgramBuilder::new()
            .memcpy(&ps, &pd)
            .crc32(&pd)
            .fill(&pd, 0x11)
            .prepare(&rt_prog)
            .unwrap();
        assert_eq!(prog.len(), 3);
        assert_eq!(prog.run(&mut rt_prog).unwrap(), 3);

        Job::memcpy(&js, &jd).execute(&mut rt_jobs).unwrap();
        Job::crc32(&jd).execute(&mut rt_jobs).unwrap();
        Job::fill(&jd, 0x11).execute(&mut rt_jobs).unwrap();

        assert_eq!(rt_prog.read(&pd).unwrap(), rt_jobs.read(&jd).unwrap());
        assert_eq!(rt_prog.now(), rt_jobs.now(), "clocks must be bit-identical");
    }

    #[test]
    fn rewound_replay_is_steady_state() {
        let mut rt = DsaRuntime::spr_default();
        let src = rt.alloc(4096, Location::local_dram());
        let dst = rt.alloc(4096, Location::local_dram());
        rt.fill_pattern(&src, 9);
        let mut prog =
            ProgramBuilder::new().memcpy(&src, &dst).compare(&src, &dst).prepare(&rt).unwrap();
        for round in 0..5 {
            prog.rewind();
            assert_eq!(prog.pc(), 0);
            assert_eq!(prog.remaining(), 2);
            let copy = prog.step(&mut rt).unwrap().unwrap();
            assert_eq!(copy.record.status, Status::Success, "round {round}");
            let cmp = prog.step(&mut rt).unwrap().unwrap();
            assert_eq!(cmp.record.status, Status::Success, "compare matches after copy");
            assert!(prog.step(&mut rt).unwrap().is_none(), "program exhausted");
        }
    }

    #[test]
    fn policy_flags_apply_to_data_ops_only() {
        let rt = DsaRuntime::spr_default();
        let prog = ProgramBuilder::new()
            .cache_control(true)
            .block_on_fault(true)
            .nop()
            .memcpy(&BufferHandle::from_raw(0x1000, 64), &BufferHandle::from_raw(0x2000, 64))
            .prepare(&rt)
            .unwrap();
        let nop = prog.instrs()[0].descriptor();
        assert!(!nop.flags.contains(Flags::CACHE_CONTROL), "nop must stay flag-clean");
        let cp = prog.instrs()[1].descriptor();
        assert!(cp.flags.contains(Flags::CACHE_CONTROL));
        assert!(cp.flags.contains(Flags::BLOCK_ON_FAULT));
    }

    #[test]
    fn offload_request_mirrors_constructor_aliasing() {
        let src = BufferHandle::from_raw(0x1000, 256);
        let dst = BufferHandle::from_raw(0x2000, 256);
        let rt = DsaRuntime::spr_default();
        let prog = ProgramBuilder::new()
            .fill(&dst, 0xEE)
            .crc32(&src)
            .memcpy(&src, &dst)
            .prepare(&rt)
            .unwrap();
        let fill = prog.instrs()[0].offload_request();
        assert_eq!(fill.src.addr(), fill.dst.addr(), "fill aliases dst");
        assert_eq!(fill.pattern, 0xEE);
        let crc = prog.instrs()[1].offload_request();
        assert_eq!(crc.dst.addr(), 0x1000, "crc aliases src");
        let cp = prog.instrs()[2].offload_request();
        assert_eq!((cp.src.addr(), cp.dst.addr()), (0x1000, 0x2000));
        assert_eq!(cp.bytes(), 256);
    }
}
