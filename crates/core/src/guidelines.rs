//! Executable encodings of the paper's guidelines G1–G6 (§6).
//!
//! Each advisor turns a guideline's prose into a function a program can
//! call; the integration tests check that following the advice actually
//! wins in the simulated system (and the `g*` ablation series in the
//! benches show the margins).

use dsa_device::config::DeviceConfig;
use dsa_mem::topology::MediumParams;

/// G1 — "Keep a balanced batch size and transfer size."
///
/// For a fixed total of `total_bytes`, recommends a `(transfer_size,
/// batch_size)` split. Contiguous data coalesces into one big descriptor;
/// otherwise modest batching (4–8) balances descriptor-management overhead
/// against fetch pipelining (Fig. 14).
pub fn g1_split(total_bytes: u64, contiguous: bool) -> (u64, u32) {
    if contiguous || total_bytes <= 4096 {
        return (total_bytes, 1);
    }
    // Modest batch: grow with total size, capped at 8.
    let bs = match total_bytes {
        0..=65_535 => 4u32,
        _ => 8,
    };
    (total_bytes / bs as u64, bs)
}

/// Where G2 routes an operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecutionAdvice {
    /// Offload asynchronously (best throughput and core efficiency).
    DsaAsync,
    /// Offload synchronously (above break-even but no async potential).
    DsaSync,
    /// Run on the CPU core.
    Cpu,
}

/// G2 — "Use DSA asynchronously when possible."
///
/// Below ~4 KiB with no async potential, the core wins — *if* cache
/// pollution is acceptable (Fig. 2/15).
pub fn g2_execution(bytes: u64, can_async: bool, pollution_ok: bool) -> ExecutionAdvice {
    if can_async {
        return ExecutionAdvice::DsaAsync;
    }
    if bytes < 4096 && pollution_ok {
        return ExecutionAdvice::Cpu;
    }
    ExecutionAdvice::DsaSync
}

/// G3 — "Control the data destination wisely."
///
/// Returns the cache-control flag: write to LLC when the data is consumed
/// soon (temporal locality); stream to memory otherwise to avoid evicting
/// co-runners (Figs. 10/12).
pub fn g3_cache_control(consumed_soon: bool) -> bool {
    consumed_soon
}

/// Which buffer goes on which medium for a cross-tier move (G4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TierPlacement {
    /// Put the *destination* on medium A (A has the faster writes).
    DestOnA,
    /// Put the *destination* on medium B.
    DestOnB,
    /// The media are equivalent; split source/destination across them for
    /// channel parallelism.
    Split,
}

/// G4 — "DSA as a good candidate of moving data across a heterogeneous
/// memory system."
///
/// "The memory type with faster write latency exhibits better performance
/// when used as DSA destination" (§6.2).
pub fn g4_tier_placement(a: &MediumParams, b: &MediumParams) -> TierPlacement {
    let a_ps = a.write_latency.as_ps() as i128;
    let b_ps = b.write_latency.as_ps() as i128;
    let diff = a_ps - b_ps;
    // Within 10%: treat as symmetric and split for channel parallelism.
    if diff.unsigned_abs() * 10 <= a_ps.max(b_ps) as u128 {
        TierPlacement::Split
    } else if diff < 0 {
        TierPlacement::DestOnA
    } else {
        TierPlacement::DestOnB
    }
}

/// G5 — "Leverage PE-level parallelism."
///
/// Small transfers are bounded by per-descriptor engine overhead, so give
/// their group more engines; a single engine already saturates the fabric
/// for large transfers (Fig. 7).
pub fn g5_engines(typical_transfer: u64) -> u32 {
    match typical_transfer {
        0..=16_384 => 4,
        16_385..=262_144 => 2,
        _ => 1,
    }
}

/// WQ strategy recommended by G6.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WqStrategy {
    /// One dedicated WQ per submitter.
    DedicatedPerThread {
        /// How many DWQs to configure.
        wqs: u32,
    },
    /// One shared WQ; hardware manages the concurrency.
    SharedSingle,
}

/// G6 — "Optimize WQ configuration."
///
/// DWQs (or batching to one DWQ) win while submitters fit in the WQ
/// budget; with more threads than WQs, a shared WQ "offloads concurrency
/// management to hardware" (Fig. 9).
pub fn g6_wq_strategy(threads: u32, available_wqs: u32) -> WqStrategy {
    if threads <= available_wqs {
        WqStrategy::DedicatedPerThread { wqs: threads }
    } else {
        WqStrategy::SharedSingle
    }
}

/// G6 addendum: "assigning 32 entries for a single WQ can provide almost
/// the maximum throughput possible."
pub fn g6_wq_size() -> u32 {
    32
}

/// Builds a device configuration following G5+G6 for a workload described
/// by its typical transfer size and submitter count.
///
/// # Panics
///
/// Never panics for `threads >= 1` (the fallback is a shared WQ preset).
pub fn recommended_config(typical_transfer: u64, threads: u32) -> DeviceConfig {
    use crate::config::AccelConfig;
    let engines = g5_engines(typical_transfer);
    match g6_wq_strategy(threads, 8) {
        WqStrategy::DedicatedPerThread { wqs } => {
            let mut cfg = AccelConfig::builder();
            let per_group = (engines / wqs.max(1)).max(1);
            let mut remaining = 4u32;
            // Engines are a budget of 4: shrink groups if oversubscribed.
            let size = (128 / wqs.max(1)).min(g6_wq_size().max(128 / wqs.max(1)));
            for _ in 0..wqs {
                let e = per_group.min(remaining.max(1));
                remaining = remaining.saturating_sub(e);
                cfg = cfg.group(e.max(1)).dedicated_wq(size.max(1));
            }
            cfg.build().unwrap_or_else(|_| {
                // Oversubscription fallback: all submitters share one WQ.
                crate::config::presets::one_swq_one_engine()
            })
        }
        WqStrategy::SharedSingle => {
            AccelConfig::builder()
                .group(engines.min(4))
                .shared_wq(g6_wq_size())
                .build()
                // dsa-lint: allow(unwrap, fixed-shape shared preset is always within capabilities)
                .expect("shared preset is always valid")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsa_mem::buffer::Location;
    use dsa_mem::topology::Platform;

    #[test]
    fn g1_coalesces_contiguous() {
        assert_eq!(g1_split(1 << 20, true), (1 << 20, 1));
        let (ts, bs) = g1_split(1 << 20, false);
        assert_eq!(bs, 8);
        assert_eq!(ts * bs as u64, 1 << 20);
    }

    #[test]
    fn g1_small_totals_stay_single() {
        assert_eq!(g1_split(2048, false).1, 1);
    }

    #[test]
    fn g2_prefers_async() {
        assert_eq!(g2_execution(256, true, true), ExecutionAdvice::DsaAsync);
        assert_eq!(g2_execution(256, false, true), ExecutionAdvice::Cpu);
        assert_eq!(g2_execution(256, false, false), ExecutionAdvice::DsaSync);
        assert_eq!(g2_execution(1 << 20, false, true), ExecutionAdvice::DsaSync);
    }

    #[test]
    fn g4_picks_faster_write_side() {
        let spr = Platform::spr();
        let dram = spr.medium(Location::local_dram());
        let cxl = spr.medium(Location::Cxl);
        // DRAM writes are faster: destination should be DRAM.
        assert_eq!(g4_tier_placement(&dram, &cxl), TierPlacement::DestOnA);
        assert_eq!(g4_tier_placement(&cxl, &dram), TierPlacement::DestOnB);
        // Symmetric media: split.
        assert_eq!(g4_tier_placement(&dram, &dram), TierPlacement::Split);
    }

    #[test]
    fn g5_scales_engines_inversely_with_size() {
        assert_eq!(g5_engines(1024), 4);
        assert_eq!(g5_engines(64 << 10), 2);
        assert_eq!(g5_engines(2 << 20), 1);
    }

    #[test]
    fn g6_switches_to_shared_when_oversubscribed() {
        assert_eq!(g6_wq_strategy(4, 8), WqStrategy::DedicatedPerThread { wqs: 4 });
        assert_eq!(g6_wq_strategy(16, 8), WqStrategy::SharedSingle);
        assert_eq!(g6_wq_size(), 32);
    }

    #[test]
    fn recommended_configs_are_valid() {
        use dsa_device::config::DeviceCaps;
        for (ts, threads) in [(1024u64, 1u32), (1024, 4), (1 << 20, 2), (4096, 32)] {
            let cfg = recommended_config(ts, threads);
            cfg.validate(&DeviceCaps::dsa1()).unwrap();
        }
    }
}
