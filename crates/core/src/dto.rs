//! DTO — the transparent offload layer.
//!
//! The paper's DSA Transparent Offload library intercepts `memcpy()`,
//! `memmove()`, `memset()` and `memcmp()` (via `LD_PRELOAD` or `-ldto`) and
//! replaces calls above a size threshold with synchronous DSA operations
//! (§5, Appendix B). This module is that layer for simulated programs: call
//! [`Dto::memcpy`] wherever the application would call `memcpy`, and the
//! router decides CPU vs. DSA.
//!
//! Since the backend refactor, `Dto` is a thin veneer over
//! [`Dispatcher`](crate::dispatch::Dispatcher): DTO's fixed byte threshold
//! is simply [`DispatchPolicy::Threshold`], one policy among several.
//!
//! The CacheLib appendix motivates the default threshold: "around 4.8% of
//! memcpy()s are copying data of 8 KB or larger in size, but account for
//! 96.4% of data copied" — so DTO offloads ≥ 8 KiB by default and the rare
//! large copies carry almost all the bytes.

use crate::backend::DsaBackend;
use crate::dispatch::{DispatchPolicy, Dispatcher};
use crate::error::DsaError;
use crate::runtime::DsaRuntime;
use dsa_mem::memory::BufferHandle;
use dsa_sim::time::SimDuration;

/// Counters describing what DTO routed where.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DtoStats {
    /// Total intercepted calls.
    pub calls: u64,
    /// Calls sent to DSA.
    pub offloaded_calls: u64,
    /// Total bytes across calls.
    pub bytes: u64,
    /// Bytes sent to DSA.
    pub offloaded_bytes: u64,
    /// Offloads that hit a page fault and were redone on the CPU.
    pub fault_fallbacks: u64,
}

impl DtoStats {
    /// Fraction of calls offloaded.
    pub fn call_fraction(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.offloaded_calls as f64 / self.calls as f64
        }
    }

    /// Fraction of bytes offloaded.
    pub fn byte_fraction(&self) -> f64 {
        if self.bytes == 0 {
            0.0
        } else {
            self.offloaded_bytes as f64 / self.bytes as f64
        }
    }
}

/// The transparent-offload router.
#[derive(Clone, Debug)]
pub struct Dto {
    dispatcher: Dispatcher,
    threshold: u64,
    device: usize,
    wq: usize,
}

impl Default for Dto {
    fn default() -> Self {
        Self::new()
    }
}

impl Dto {
    /// A router with the 8 KiB default threshold on device 0 / WQ 0.
    pub fn new() -> Dto {
        let threshold = 8 << 10;
        Dto {
            dispatcher: Dispatcher::new().with_policy(DispatchPolicy::Threshold(threshold)),
            threshold,
            device: 0,
            wq: 0,
        }
    }

    fn rebuild(self) -> Dto {
        let dispatcher = Dispatcher::new()
            .with_policy(DispatchPolicy::Threshold(self.threshold))
            .with_backend(DsaBackend::with_pool(vec![self.device]).on_wq(self.wq));
        Dto { dispatcher, ..self }
    }

    /// Overrides the offload threshold.
    pub fn with_threshold(mut self, bytes: u64) -> Dto {
        self.threshold = bytes;
        self.rebuild()
    }

    /// Targets a specific device/WQ.
    pub fn on(mut self, device: usize, wq: usize) -> Dto {
        self.device = device;
        self.wq = wq;
        self.rebuild()
    }

    /// The active threshold.
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    /// Routing statistics.
    pub fn stats(&self) -> DtoStats {
        let d = self.dispatcher.stats();
        DtoStats {
            calls: d.calls(),
            offloaded_calls: d.offloaded_calls(),
            bytes: d.cpu_bytes + d.offloaded_bytes,
            offloaded_bytes: d.offloaded_bytes,
            fault_fallbacks: d.fault_fallbacks,
        }
    }

    /// Intercepted `memcpy`: routes to DSA at or above the threshold,
    /// otherwise runs on the CPU. Returns the elapsed time.
    ///
    /// # Errors
    ///
    /// Propagates non-retryable submission failures.
    pub fn memcpy(
        &mut self,
        rt: &mut DsaRuntime,
        src: &BufferHandle,
        dst: &BufferHandle,
    ) -> Result<SimDuration, DsaError> {
        self.dispatcher.memcpy(rt, src, dst)
    }

    /// Intercepted `memset` (fills with `byte`).
    ///
    /// # Errors
    ///
    /// Propagates non-retryable submission failures.
    pub fn memset(
        &mut self,
        rt: &mut DsaRuntime,
        dst: &BufferHandle,
        byte: u8,
    ) -> Result<SimDuration, DsaError> {
        self.dispatcher.memset(rt, dst, byte)
    }

    /// Intercepted `memcmp`: returns the first differing offset (like the
    /// DSA Compare operation) and the elapsed time.
    ///
    /// # Errors
    ///
    /// Propagates non-retryable submission failures.
    pub fn memcmp(
        &mut self,
        rt: &mut DsaRuntime,
        a: &BufferHandle,
        b: &BufferHandle,
    ) -> Result<(Option<u64>, SimDuration), DsaError> {
        self.dispatcher.memcmp(rt, a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsa_mem::buffer::Location;

    #[test]
    fn small_copies_stay_on_cpu() {
        let mut rt = DsaRuntime::spr_default();
        let mut dto = Dto::new();
        let a = rt.alloc(1024, Location::local_dram());
        let b = rt.alloc(1024, Location::local_dram());
        rt.fill_pattern(&a, 3);
        dto.memcpy(&mut rt, &a, &b).unwrap();
        assert_eq!(dto.stats().offloaded_calls, 0);
        assert_eq!(rt.read(&b).unwrap()[0], 3);
    }

    #[test]
    fn large_copies_offload() {
        let mut rt = DsaRuntime::spr_default();
        let mut dto = Dto::new();
        let a = rt.alloc(64 << 10, Location::local_dram());
        let b = rt.alloc(64 << 10, Location::local_dram());
        rt.fill_pattern(&a, 9);
        dto.memcpy(&mut rt, &a, &b).unwrap();
        assert_eq!(dto.stats().offloaded_calls, 1);
        assert!(rt.read(&b).unwrap().iter().all(|&x| x == 9));
        assert!((dto.stats().byte_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn threshold_override() {
        let mut rt = DsaRuntime::spr_default();
        let mut dto = Dto::new().with_threshold(512);
        assert_eq!(dto.threshold(), 512);
        let a = rt.alloc(1024, Location::local_dram());
        let b = rt.alloc(1024, Location::local_dram());
        dto.memcpy(&mut rt, &a, &b).unwrap();
        assert_eq!(dto.stats().offloaded_calls, 1);
    }

    #[test]
    fn memset_and_memcmp_route() {
        let mut rt = DsaRuntime::spr_default();
        let mut dto = Dto::new().with_threshold(4096);
        let a = rt.alloc(8192, Location::local_dram());
        let b = rt.alloc(8192, Location::local_dram());
        dto.memset(&mut rt, &a, 0xAA).unwrap();
        assert!(rt.read(&a).unwrap().iter().all(|&x| x == 0xAA));
        let (diff, _) = dto.memcmp(&mut rt, &a, &b).unwrap();
        assert_eq!(diff, Some(0));
        dto.memset(&mut rt, &b, 0xAA).unwrap();
        let (diff, _) = dto.memcmp(&mut rt, &a, &b).unwrap();
        assert_eq!(diff, None);
        assert_eq!(dto.stats().calls, 4);
        assert_eq!(dto.stats().offloaded_calls, 4);
    }

    #[test]
    fn fault_fallback_redoes_on_cpu() {
        let mut rt = DsaRuntime::spr_default();
        let mut dto = Dto::new();
        let a = rt.alloc(32 << 10, Location::local_dram());
        let b = rt.alloc(32 << 10, Location::local_dram());
        rt.fill_pattern(&a, 5);
        rt.memsys_mut().page_table_mut().unmap_page(b.addr() + 8192);
        dto.memcpy(&mut rt, &a, &b).unwrap();
        assert_eq!(dto.stats().fault_fallbacks, 1);
        // CPU redo still produced the full copy.
        assert!(rt.read(&b).unwrap().iter().all(|&x| x == 5));
    }

    #[test]
    fn cachelib_style_distribution() {
        // Mimic the appendix: mostly small copies, few large ones that
        // carry nearly all bytes.
        let mut rt = DsaRuntime::spr_default();
        let mut dto = Dto::new();
        let small_src = rt.alloc(1024, Location::local_dram());
        let small_dst = rt.alloc(1024, Location::local_dram());
        let big_src = rt.alloc(512 << 10, Location::local_dram());
        let big_dst = rt.alloc(512 << 10, Location::local_dram());
        for _ in 0..95 {
            dto.memcpy(&mut rt, &small_src, &small_dst).unwrap();
        }
        for _ in 0..5 {
            dto.memcpy(&mut rt, &big_src, &big_dst).unwrap();
        }
        let s = dto.stats();
        assert!(s.call_fraction() < 0.10);
        assert!(s.byte_fraction() > 0.90);
    }
}
