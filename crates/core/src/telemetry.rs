//! PCM-style telemetry sampling (paper §5: "By reading the hardware
//! performance counters, PCM is able to observe the inbound-outbound
//! traffic and request count on each DSA instance").
//!
//! [`TelemetryLog`] snapshots a device's counters over time, producing the
//! per-interval deltas a monitoring loop would chart: descriptors/s and
//! inbound/outbound GB/s.

use crate::runtime::DsaRuntime;
use dsa_device::device::Telemetry;
use dsa_sim::time::{SimDuration, SimTime};

/// One sampled interval.
#[derive(Clone, Copy, Debug)]
pub struct TelemetrySample {
    /// End of the sampled interval.
    pub at: SimTime,
    /// Interval length.
    pub interval: SimDuration,
    /// Descriptors completed during the interval.
    pub descriptors: u64,
    /// Inbound (read) bytes during the interval.
    pub bytes_read: u64,
    /// Outbound (written) bytes during the interval.
    pub bytes_written: u64,
}

impl TelemetrySample {
    /// Inbound bandwidth over the interval in GB/s.
    pub fn read_gbps(&self) -> f64 {
        if self.interval.is_zero() {
            return 0.0;
        }
        self.bytes_read as f64 / self.interval.as_ns_f64()
    }

    /// Outbound bandwidth over the interval in GB/s.
    pub fn write_gbps(&self) -> f64 {
        if self.interval.is_zero() {
            return 0.0;
        }
        self.bytes_written as f64 / self.interval.as_ns_f64()
    }
}

/// A counter-delta sampler for one device.
#[derive(Debug)]
pub struct TelemetryLog {
    device: usize,
    last: Telemetry,
    last_at: SimTime,
    samples: Vec<TelemetrySample>,
}

impl TelemetryLog {
    /// Starts sampling device `device` from the runtime's current state.
    ///
    /// # Panics
    ///
    /// Panics if `device` is out of range.
    pub fn start(rt: &DsaRuntime, device: usize) -> TelemetryLog {
        TelemetryLog {
            device,
            last: rt.device(device).telemetry(),
            last_at: rt.now(),
            samples: Vec::new(),
        }
    }

    /// Takes a sample: the delta since the previous call (or `start`).
    pub fn sample(&mut self, rt: &DsaRuntime) -> TelemetrySample {
        let now = rt.now();
        let t = rt.device(self.device).telemetry();
        let s = TelemetrySample {
            at: now,
            interval: now.saturating_duration_since(self.last_at),
            // Counters never run backwards in normal operation, but a
            // caller may rebuild/reset a device mid-log; deltas saturate
            // rather than panic on underflow.
            descriptors: t.descriptors.saturating_sub(self.last.descriptors),
            bytes_read: t.bytes_read.saturating_sub(self.last.bytes_read),
            bytes_written: t.bytes_written.saturating_sub(self.last.bytes_written),
        };
        self.last = t;
        self.last_at = now;
        self.samples.push(s);
        s
    }

    /// All samples taken so far.
    pub fn samples(&self) -> &[TelemetrySample] {
        &self.samples
    }

    /// Peak inbound bandwidth across samples, in GB/s.
    pub fn peak_read_gbps(&self) -> f64 {
        self.samples.iter().map(|s| s.read_gbps()).fold(0.0, f64::max)
    }

    /// Peak outbound bandwidth across samples, in GB/s.
    pub fn peak_write_gbps(&self) -> f64 {
        self.samples.iter().map(|s| s.write_gbps()).fold(0.0, f64::max)
    }

    /// The `p`-th percentile (0.0–1.0) of per-sample inbound bandwidth,
    /// in GB/s. Returns 0.0 with no samples.
    pub fn read_gbps_percentile(&self, p: f64) -> f64 {
        Self::percentile_of(self.samples.iter().map(|s| s.read_gbps()).collect(), p)
    }

    /// The `p`-th percentile (0.0–1.0) of per-sample outbound bandwidth,
    /// in GB/s. Returns 0.0 with no samples.
    pub fn write_gbps_percentile(&self, p: f64) -> f64 {
        Self::percentile_of(self.samples.iter().map(|s| s.write_gbps()).collect(), p)
    }

    fn percentile_of(mut vals: Vec<f64>, p: f64) -> f64 {
        if vals.is_empty() {
            return 0.0;
        }
        vals.sort_by(f64::total_cmp);
        // dsa-lint: allow(float-cast, percentile rank is an index computation, not timeline math)
        let rank = (p.clamp(0.0, 1.0) * (vals.len() - 1) as f64).round() as usize;
        vals[rank]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{AsyncQueue, Job};
    use dsa_mem::buffer::Location;

    #[test]
    fn samples_report_interval_deltas() {
        let mut rt = DsaRuntime::spr_default();
        let src = rt.alloc(64 << 10, Location::local_dram());
        let dst = rt.alloc(64 << 10, Location::local_dram());
        let mut log = TelemetryLog::start(&rt, 0);

        let mut q = AsyncQueue::new(16);
        for _ in 0..32 {
            q.submit(&mut rt, Job::memcpy(&src, &dst)).unwrap();
        }
        q.drain(&mut rt);
        let s1 = log.sample(&rt);
        assert_eq!(s1.descriptors, 32);
        assert_eq!(s1.bytes_read, 32 * (64 << 10));
        assert!(s1.read_gbps() > 10.0, "streaming interval shows high bandwidth");

        // An idle interval shows zero deltas.
        rt.advance(dsa_sim::time::SimDuration::from_us(50));
        let s2 = log.sample(&rt);
        assert_eq!(s2.descriptors, 0);
        assert_eq!(s2.read_gbps(), 0.0);

        assert_eq!(log.samples().len(), 2);
        assert!(log.peak_read_gbps() >= s1.read_gbps());
    }

    #[test]
    fn write_peak_and_percentiles() {
        let mut rt = DsaRuntime::spr_default();
        let src = rt.alloc(32 << 10, Location::local_dram());
        let dst = rt.alloc(32 << 10, Location::local_dram());
        let mut log = TelemetryLog::start(&rt, 0);

        // Busy interval, then two idle intervals: the peak comes from the
        // busy one and the median (p50) from the idle majority.
        let mut q = AsyncQueue::new(8);
        for _ in 0..16 {
            q.submit(&mut rt, Job::memcpy(&src, &dst)).unwrap();
        }
        q.drain(&mut rt);
        log.sample(&rt);
        for _ in 0..2 {
            rt.advance(dsa_sim::time::SimDuration::from_us(100));
            log.sample(&rt);
        }

        assert!(log.peak_write_gbps() > 1.0, "peak {}", log.peak_write_gbps());
        assert!((log.peak_write_gbps() - log.write_gbps_percentile(1.0)).abs() < 1e-12);
        assert_eq!(log.write_gbps_percentile(0.5), 0.0, "idle median");
        assert!(log.read_gbps_percentile(1.0) >= log.read_gbps_percentile(0.5));
    }

    #[test]
    fn percentiles_empty_log_is_zero() {
        let rt = DsaRuntime::spr_default();
        let log = TelemetryLog::start(&rt, 0);
        assert_eq!(log.peak_write_gbps(), 0.0);
        assert_eq!(log.read_gbps_percentile(0.99), 0.0);
        assert_eq!(log.write_gbps_percentile(0.5), 0.0);
    }

    #[test]
    fn sample_saturates_after_counter_rewind() {
        // Simulate a counter rewind by starting a log against a busy
        // runtime, then sampling against a fresh (zeroed) one.
        let mut rt = DsaRuntime::spr_default();
        let src = rt.alloc(4096, Location::local_dram());
        let dst = rt.alloc(4096, Location::local_dram());
        Job::memcpy(&src, &dst).execute(&mut rt).unwrap();
        let mut log = TelemetryLog::start(&rt, 0);
        let fresh = DsaRuntime::spr_default();
        let s = log.sample(&fresh);
        assert_eq!(s.descriptors, 0, "delta saturates instead of wrapping");
        assert_eq!(s.bytes_read, 0);
        assert_eq!(s.bytes_written, 0);
    }

    #[test]
    fn zero_interval_sample_is_safe() {
        let rt = DsaRuntime::spr_default();
        let mut log = TelemetryLog::start(&rt, 0);
        let s = log.sample(&rt);
        assert_eq!(s.read_gbps(), 0.0);
        assert_eq!(s.write_gbps(), 0.0);
    }
}
