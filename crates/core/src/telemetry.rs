//! PCM-style telemetry sampling (paper §5: "By reading the hardware
//! performance counters, PCM is able to observe the inbound-outbound
//! traffic and request count on each DSA instance").
//!
//! [`TelemetryLog`] snapshots a device's counters over time, producing the
//! per-interval deltas a monitoring loop would chart: descriptors/s and
//! inbound/outbound GB/s.

use crate::runtime::DsaRuntime;
use dsa_device::device::Telemetry;
use dsa_sim::time::{SimDuration, SimTime};

/// One sampled interval.
#[derive(Clone, Copy, Debug)]
pub struct TelemetrySample {
    /// End of the sampled interval.
    pub at: SimTime,
    /// Interval length.
    pub interval: SimDuration,
    /// Descriptors completed during the interval.
    pub descriptors: u64,
    /// Inbound (read) bytes during the interval.
    pub bytes_read: u64,
    /// Outbound (written) bytes during the interval.
    pub bytes_written: u64,
}

impl TelemetrySample {
    /// Inbound bandwidth over the interval in GB/s.
    pub fn read_gbps(&self) -> f64 {
        if self.interval.is_zero() {
            return 0.0;
        }
        self.bytes_read as f64 / self.interval.as_ns_f64()
    }

    /// Outbound bandwidth over the interval in GB/s.
    pub fn write_gbps(&self) -> f64 {
        if self.interval.is_zero() {
            return 0.0;
        }
        self.bytes_written as f64 / self.interval.as_ns_f64()
    }
}

/// A counter-delta sampler for one device.
#[derive(Debug)]
pub struct TelemetryLog {
    device: usize,
    last: Telemetry,
    last_at: SimTime,
    samples: Vec<TelemetrySample>,
}

impl TelemetryLog {
    /// Starts sampling device `device` from the runtime's current state.
    ///
    /// # Panics
    ///
    /// Panics if `device` is out of range.
    pub fn start(rt: &DsaRuntime, device: usize) -> TelemetryLog {
        TelemetryLog {
            device,
            last: rt.device(device).telemetry(),
            last_at: rt.now(),
            samples: Vec::new(),
        }
    }

    /// Takes a sample: the delta since the previous call (or `start`).
    pub fn sample(&mut self, rt: &DsaRuntime) -> TelemetrySample {
        let now = rt.now();
        let t = rt.device(self.device).telemetry();
        let s = TelemetrySample {
            at: now,
            interval: now.saturating_duration_since(self.last_at),
            descriptors: t.descriptors - self.last.descriptors,
            bytes_read: t.bytes_read - self.last.bytes_read,
            bytes_written: t.bytes_written - self.last.bytes_written,
        };
        self.last = t;
        self.last_at = now;
        self.samples.push(s);
        s
    }

    /// All samples taken so far.
    pub fn samples(&self) -> &[TelemetrySample] {
        &self.samples
    }

    /// Peak inbound bandwidth across samples, in GB/s.
    pub fn peak_read_gbps(&self) -> f64 {
        self.samples.iter().map(|s| s.read_gbps()).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{AsyncQueue, Job};
    use dsa_mem::buffer::Location;

    #[test]
    fn samples_report_interval_deltas() {
        let mut rt = DsaRuntime::spr_default();
        let src = rt.alloc(64 << 10, Location::local_dram());
        let dst = rt.alloc(64 << 10, Location::local_dram());
        let mut log = TelemetryLog::start(&rt, 0);

        let mut q = AsyncQueue::new(16);
        for _ in 0..32 {
            q.submit(&mut rt, Job::memcpy(&src, &dst)).unwrap();
        }
        q.drain(&mut rt);
        let s1 = log.sample(&rt);
        assert_eq!(s1.descriptors, 32);
        assert_eq!(s1.bytes_read, 32 * (64 << 10));
        assert!(s1.read_gbps() > 10.0, "streaming interval shows high bandwidth");

        // An idle interval shows zero deltas.
        rt.advance(dsa_sim::time::SimDuration::from_us(50));
        let s2 = log.sample(&rt);
        assert_eq!(s2.descriptors, 0);
        assert_eq!(s2.read_gbps(), 0.0);

        assert_eq!(log.samples().len(), 2);
        assert!(log.peak_read_gbps() >= s1.read_gbps());
    }

    #[test]
    fn zero_interval_sample_is_safe() {
        let rt = DsaRuntime::spr_default();
        let mut log = TelemetryLog::start(&rt, 0);
        let s = log.sample(&rt);
        assert_eq!(s.read_gbps(), 0.0);
        assert_eq!(s.write_gbps(), 0.0);
    }
}
