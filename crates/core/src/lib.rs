//! # dsa-core — the user-facing DSA library
//!
//! The layer a program links against, mirroring the real software
//! ecosystem the paper describes (§3.3, §5):
//!
//! | Real component      | Here                                            |
//! |---------------------|-------------------------------------------------|
//! | `libaccel-config`   | [`config::AccelConfig`] — validated group/WQ/engine setup |
//! | PCM telemetry       | [`telemetry::TelemetryLog`] — counter-delta sampling |
//! | DML (Data Mover Library) | [`job::Job`], [`job::Batch`], [`job::AsyncQueue`] |
//! | `MOVDIR64B`/`ENQCMD`/`UMWAIT` | [`submit`] — submission & wait models |
//! | DTO (transparent offload) | [`dto::Dto`] — threshold-routed `mem*` calls |
//! | Guidelines G1–G6    | [`guidelines`] — executable advisors            |
//! | Offload runtimes (DML backends) | [`backend`] — CPU/DSA/CBDMA behind one trait |
//! | G1–G3 as live policy | [`dispatch::Dispatcher`] — per-call backend routing |
//! | Pre-allocated descriptors (Fig. 5) | [`program::OpProgram`] — compiled, allocation-free op replay |
//! | Replay verification  | [`digest::Fnv1a`] / [`digest::Digestible`] — the one FNV-1a digest primitive |
//!
//! Everything runs against a [`runtime::DsaRuntime`]: the simulated SPR
//! (or ICX) platform with its memory system and DSA instances.
//!
//! ```
//! use dsa_core::prelude::*;
//! use dsa_mem::buffer::Location;
//!
//! let mut rt = DsaRuntime::spr_default();
//! let src = rt.alloc(16 << 10, Location::local_dram());
//! let dst = rt.alloc(16 << 10, Location::local_dram());
//! rt.fill_random(&src);
//!
//! // Synchronous offload…
//! let report = Job::memcpy(&src, &dst).execute(&mut rt)?;
//! assert!(report.record.status.is_ok());
//!
//! // …or queue-depth-32 asynchronous streaming.
//! let mut q = AsyncQueue::new(32);
//! for _ in 0..100 {
//!     q.submit(&mut rt, Job::memcpy(&src, &dst))?;
//! }
//! q.drain(&mut rt);
//! # Ok::<(), dsa_core::DsaError>(())
//! ```

pub mod backend;
pub mod config;
pub mod digest;
pub mod dispatch;
pub mod dto;
pub mod error;
pub mod guidelines;
pub mod job;
pub mod program;
pub mod runtime;
pub mod submit;
pub mod telemetry;

/// The types most programs need.
pub mod prelude {
    pub use crate::backend::{
        CbdmaBackend, CpuBackend, DsaBackend, Engine, OffloadBackend, OffloadRequest, PoolPolicy,
    };
    pub use crate::config::AccelConfig;
    pub use crate::digest::{Digestible, Fnv1a};
    pub use crate::dispatch::{Decision, DispatchPolicy, DispatchStats, Dispatcher};
    pub use crate::dto::Dto;
    pub use crate::error::DsaError;
    pub use crate::job::{AsyncQueue, Batch, Job, JobReport};
    pub use crate::program::{OpInstr, OpProgram, ProgramBuilder};
    pub use crate::runtime::{DsaRuntime, RuntimeBuilder};
    pub use crate::submit::{SubmitMethod, WaitMethod};
    pub use crate::telemetry::TelemetryLog;
    pub use dsa_device::descriptor::Status;
}

pub use error::DsaError;
pub use job::{AsyncQueue, Batch, Job, JobHandle, JobReport};
pub use program::{OpInstr, OpProgram, ProgramBuilder};
pub use runtime::DsaRuntime;
