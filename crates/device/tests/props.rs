//! Property-style tests for the device model: functional equivalence with
//! the software kernels and timing-invariant ordering for arbitrary work.
//!
//! Randomized inputs come from the in-repo deterministic [`SplitMix64`]
//! generator so the suite runs offline with no external test-harness
//! dependency; every case is reproducible from the fixed seeds below.

use dsa_device::config::DeviceConfig;
use dsa_device::descriptor::{Descriptor, Flags, OpParams, Opcode, Status};
use dsa_device::device::{DsaDevice, SubmitError, WqId};
use dsa_mem::buffer::{Location, PageSize};
use dsa_mem::memory::Memory;
use dsa_mem::memsys::MemSystem;
use dsa_mem::topology::Platform;
use dsa_ops::crc32::Crc32c;
use dsa_sim::rng::SplitMix64;
use dsa_sim::time::SimTime;

const CASES: usize = 24;

struct Rig {
    memory: Memory,
    memsys: MemSystem,
    dev: DsaDevice,
}

impl Rig {
    fn new() -> Rig {
        let platform = Platform::spr();
        Rig {
            memory: Memory::new(),
            memsys: MemSystem::new(platform.clone()),
            dev: DsaDevice::new(0, DeviceConfig::full_device(), &platform),
        }
    }

    fn alloc(&mut self, len: u64) -> u64 {
        let h = self.memory.alloc(len.max(1), Location::local_dram());
        self.memsys.page_table_mut().map_range(h.addr(), len.max(1), PageSize::Base4K);
        h.addr()
    }

    fn submit_at(&mut self, d: &Descriptor, at: SimTime) -> dsa_device::device::Execution {
        let mut t = at;
        loop {
            match self.dev.submit(&mut self.memory, &mut self.memsys, WqId(0), d, t) {
                Ok(e) => return e,
                Err(SubmitError::WqFull { retry_at }) => t = retry_at,
                Err(e) => panic!("unexpected: {e}"),
            }
        }
    }
}

fn random_bytes(rng: &mut SplitMix64, len: usize) -> Vec<u8> {
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    v
}

#[test]
fn memmove_is_exact_for_any_size() {
    let mut rng = SplitMix64::new(0xDE7_0001);
    for _ in 0..CASES {
        let n = 1 + rng.next_below(16383) as usize;
        let data = random_bytes(&mut rng, n);
        let mut rig = Rig::new();
        let src = rig.alloc(data.len() as u64);
        let dst = rig.alloc(data.len() as u64);
        rig.memory.write(src, &data).unwrap();
        let exec = rig.submit_at(&Descriptor::memmove(src, dst, data.len() as u32), SimTime::ZERO);
        assert_eq!(exec.record.status, Status::Success);
        assert_eq!(exec.record.bytes_completed as usize, data.len());
        assert_eq!(rig.memory.read(dst, data.len() as u64).unwrap(), &data[..]);
    }
}

#[test]
fn device_crc_always_matches_software() {
    let mut rng = SplitMix64::new(0xDE7_0002);
    for _ in 0..CASES {
        let n = 1 + rng.next_below(8191) as usize;
        let data = random_bytes(&mut rng, n);
        let seed = rng.next_u64() as u32;
        let mut rig = Rig::new();
        let src = rig.alloc(data.len() as u64);
        rig.memory.write(src, &data).unwrap();
        let desc = Descriptor {
            opcode: Opcode::CrcGen,
            flags: Flags::REQUEST_COMPLETION,
            src,
            dst: 0,
            xfer_size: data.len() as u32,
            completion_addr: 0,
            params: OpParams::CrcSeed(seed),
        };
        let exec = rig.submit_at(&desc, SimTime::ZERO);
        let mut sw = if seed == 0 { Crc32c::new() } else { Crc32c::with_seed(seed) };
        sw.update(&data);
        assert_eq!(exec.record.result as u32, sw.finish());
    }
}

#[test]
fn compare_offset_matches_std() {
    let mut rng = SplitMix64::new(0xDE7_0003);
    for _ in 0..CASES {
        let n = 1 + rng.next_below(4095) as usize;
        let a = random_bytes(&mut rng, n);
        let mut rig = Rig::new();
        let mut b = a.clone();
        if rng.next_u64() & 1 == 0 {
            let i = rng.next_below(b.len() as u64) as usize;
            b[i] ^= 0x5A;
        }
        let pa = rig.alloc(a.len() as u64);
        let pb = rig.alloc(b.len() as u64);
        rig.memory.write(pa, &a).unwrap();
        rig.memory.write(pb, &b).unwrap();
        let exec = rig.submit_at(&Descriptor::compare(pa, pb, a.len() as u32), SimTime::ZERO);
        match a.iter().zip(&b).position(|(x, y)| x != y) {
            None => assert_eq!(exec.record.status, Status::Success),
            Some(off) => {
                assert_eq!(exec.record.status, Status::CompareMismatch);
                assert_eq!(exec.record.result as usize, off);
            }
        }
    }
}

#[test]
fn timeline_phases_are_ordered_for_any_workload() {
    let mut rng = SplitMix64::new(0xDE7_0004);
    for _ in 0..CASES {
        let jobs = 1 + rng.next_below(23) as usize;
        let mut rig = Rig::new();
        let mut now = SimTime::ZERO;
        let mut last_completion = SimTime::ZERO;
        for _ in 0..jobs {
            let size = 64 + rng.next_below(262_080) as u32;
            let gap = rng.next_below(2_000);
            let src = rig.alloc(size as u64);
            let dst = rig.alloc(size as u64);
            now += dsa_sim::time::SimDuration::from_ns(gap);
            let exec = rig.submit_at(&Descriptor::memmove(src, dst, size), now);
            let t = exec.timeline;
            assert!(t.submitted <= t.admitted);
            assert!(t.admitted <= t.dispatched);
            assert!(t.dispatched <= t.data_done);
            assert!(t.data_done < t.completed);
            // Completion records become visible in nondecreasing order per
            // single-WQ FIFO submission of equal-priority work only when
            // sizes are equal; in general completion must at least follow
            // this descriptor's own submission.
            assert!(t.completed > t.submitted);
            last_completion = last_completion.max(t.completed);
        }
        assert_eq!(rig.dev.last_completion(), last_completion);
    }
}

#[test]
fn telemetry_byte_accounting_is_exact() {
    let mut rng = SplitMix64::new(0xDE7_0005);
    for _ in 0..CASES {
        let jobs = 1 + rng.next_below(15) as usize;
        let mut rig = Rig::new();
        let mut expected = 0u64;
        for _ in 0..jobs {
            let size = 64 + rng.next_below(65_472) as u32;
            let src = rig.alloc(size as u64);
            let dst = rig.alloc(size as u64);
            rig.submit_at(&Descriptor::memmove(src, dst, size), SimTime::ZERO);
            expected += size as u64;
        }
        let t = rig.dev.telemetry();
        assert_eq!(t.bytes_read, expected);
        assert_eq!(t.bytes_written, expected);
        assert_eq!(t.descriptors, jobs as u64);
    }
}

#[test]
fn throughput_never_exceeds_the_fabric_cap() {
    let mut rng = SplitMix64::new(0xDE7_0006);
    for _ in 0..CASES {
        let jobs = 4 + rng.next_below(12) as usize;
        let mut rig = Rig::new();
        let mut last = SimTime::ZERO;
        let mut bytes = 0u64;
        for _ in 0..jobs {
            let size = 4096 + rng.next_below((1 << 20) - 4096) as u32;
            let src = rig.alloc(size as u64);
            let dst = rig.alloc(size as u64);
            let exec = rig.submit_at(&Descriptor::memmove(src, dst, size), SimTime::ZERO);
            last = last.max(exec.timeline.completed);
            bytes += size as u64;
        }
        let gbps = bytes as f64 / last.as_ns_f64();
        assert!(gbps <= 30.5, "exceeded the 30 GB/s fabric: {gbps}");
    }
}

mod wire_format {
    use dsa_device::descriptor::{Descriptor, Flags, OpParams, Opcode};
    use dsa_ops::dif::{DifBlockSize, DifConfig};
    use dsa_sim::rng::SplitMix64;

    const OPCODES: [Opcode; 16] = [
        Opcode::Nop,
        Opcode::Drain,
        Opcode::Memmove,
        Opcode::Fill,
        Opcode::Compare,
        Opcode::ComparePattern,
        Opcode::CreateDelta,
        Opcode::ApplyDelta,
        Opcode::Dualcast,
        Opcode::CrcGen,
        Opcode::CopyCrc,
        Opcode::DifCheck,
        Opcode::DifInsert,
        Opcode::DifStrip,
        Opcode::DifUpdate,
        Opcode::CacheFlush,
    ];

    fn params_for(op: Opcode, seed: u64) -> OpParams {
        match op {
            Opcode::Fill | Opcode::ComparePattern => OpParams::Pattern(seed),
            Opcode::Dualcast => OpParams::Dest2(seed),
            Opcode::CrcGen | Opcode::CopyCrc => OpParams::CrcSeed(seed as u32),
            Opcode::CreateDelta | Opcode::ApplyDelta => {
                OpParams::Delta { record_addr: seed, max_size: (seed >> 32) as u32 }
            }
            Opcode::DifCheck | Opcode::DifInsert | Opcode::DifStrip | Opcode::DifUpdate => {
                let block = match seed % 4 {
                    0 => DifBlockSize::B512,
                    1 => DifBlockSize::B520,
                    2 => DifBlockSize::B4096,
                    _ => DifBlockSize::B4104,
                };
                OpParams::Dif(DifConfig {
                    block,
                    app_tag: (seed >> 8) as u16,
                    starting_ref_tag: (seed >> 16) as u32,
                })
            }
            _ => OpParams::None,
        }
    }

    #[test]
    fn descriptor_wire_roundtrip() {
        let mut rng = SplitMix64::new(0xDE7_0007);
        for _ in 0..256 {
            let op = OPCODES[rng.next_below(OPCODES.len() as u64) as usize];
            let flag_bits = rng.next_below(32) as u32;
            let seed = rng.next_u64();
            let mut flags = Flags::empty();
            for bit in 0..5 {
                if flag_bits & (1 << bit) != 0 {
                    flags = flags
                        | [
                            Flags::FENCE,
                            Flags::BLOCK_ON_FAULT,
                            Flags::REQUEST_COMPLETION,
                            Flags::CACHE_CONTROL,
                            Flags::COMPLETION_INTERRUPT,
                        ][bit];
                }
            }
            let d = Descriptor {
                opcode: op,
                flags,
                src: rng.next_u64(),
                dst: rng.next_u64(),
                xfer_size: rng.next_u64() as u32,
                completion_addr: rng.next_u64(),
                params: params_for(op, seed),
            };
            let parsed = Descriptor::from_bytes(&d.to_bytes()).expect("valid opcode");
            assert_eq!(parsed, d);
        }
    }

    #[test]
    fn unknown_opcode_rejected() {
        let mut b = [0u8; 64];
        b[4] = 0x7E;
        assert!(Descriptor::from_bytes(&b).is_none());
    }
}
