//! The DSA device model: portals, work queues, group arbitration, engines,
//! batch processing, address translation, and functional execution.
//!
//! One [`DsaDevice`] models one DSA instance (an RCiEP on the SoC). Its
//! datapath follows the paper's §3.2: a descriptor lands in a WQ via a
//! portal write, the group arbiter dispatches it to a free engine, the
//! engine translates addresses through the ATC/IOMMU, streams source data
//! through its read buffers, performs the operation, writes the
//! destination (steered by the cache-control flag), and finally writes the
//! completion record.
//!
//! Timing emerges from resource timelines (engines, the device fabric, the
//! platform memory system); the *work* is executed functionally against
//! [`Memory`], so offloaded CRCs, DIFs and delta records are bit-exact.

use crate::config::{ConfigError, DeviceCaps, DeviceConfig, WqMode};
use crate::descriptor::{
    BatchDescriptor, CompletionRecord, Descriptor, DescriptorError, Flags, OpParams, Opcode, Status,
};
use crate::timing::DsaTiming;
use dsa_mem::buffer::Location;
use dsa_mem::memory::Memory;
use dsa_mem::memsys::{AgentId, MemSystem, WritePolicy};
use dsa_mem::topology::Platform;
use dsa_mem::translate::TranslationCache;
use dsa_ops::{crc32::Crc32c, delta, dif, memops};
use dsa_sim::time::{scale_bytes, transfer_time_mgbps, SimDuration, SimTime};
use dsa_sim::timeline::{BwResource, MultiServer, SlidingWindow};
use dsa_telemetry::{DescriptorSpan, Hub, Labels, Track};

/// Identifies a WQ within one device.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct WqId(pub usize);

/// Why a submission was not accepted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// No such WQ.
    UnknownWq {
        /// Offending index.
        wq: usize,
    },
    /// The WQ has no free entry; retry at (or after) `retry_at`.
    /// For shared WQs this is the ENQCMD "Retry" status.
    WqFull {
        /// Earliest instant a slot frees up.
        retry_at: SimTime,
    },
    /// Transfer size exceeds device capability.
    TooLarge {
        /// Requested size.
        size: u64,
        /// Device maximum.
        max: u32,
    },
    /// Batch must contain at least 2 and at most `max_batch` descriptors.
    BadBatchSize {
        /// Requested count.
        count: usize,
    },
    /// Nested batches are not allowed by the architecture.
    NestedBatch,
    /// The descriptor failed [`Descriptor::validate`]'s spec-conformance
    /// checks (bad flags for the opcode, misaligned completion record,
    /// operand-layout mismatch, ...).
    Rejected(DescriptorError),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::UnknownWq { wq } => write!(f, "unknown work queue {wq}"),
            SubmitError::WqFull { retry_at } => write!(f, "work queue full until {retry_at}"),
            SubmitError::TooLarge { size, max } => {
                write!(f, "transfer of {size} bytes exceeds device max of {max}")
            }
            SubmitError::BadBatchSize { count } => {
                write!(f, "batch of {count} descriptors outside 2..=max_batch")
            }
            SubmitError::NestedBatch => write!(f, "batch descriptors may not contain batches"),
            SubmitError::Rejected(e) => write!(f, "descriptor rejected: {e}"),
        }
    }
}

impl From<DescriptorError> for SubmitError {
    fn from(e: DescriptorError) -> SubmitError {
        SubmitError::Rejected(e)
    }
}

impl std::error::Error for SubmitError {}

/// Phase timestamps of one processed descriptor (paper Fig. 5's breakdown
/// is built from these plus the core-side submit cost).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecTimeline {
    /// Portal write accepted by the device.
    pub submitted: SimTime,
    /// Entered a WQ slot.
    pub admitted: SimTime,
    /// Dispatched to an engine.
    pub dispatched: SimTime,
    /// Address translation (ATS/ATC walk) finished; data movement starts.
    pub translated: SimTime,
    /// Last source byte read.
    pub read_done: SimTime,
    /// Last destination byte landed.
    pub data_done: SimTime,
    /// Completion record visible to the polling core.
    pub completed: SimTime,
}

impl ExecTimeline {
    /// Time spent queued in the WQ and arbiter.
    pub fn queue_time(&self) -> SimDuration {
        self.dispatched.saturating_duration_since(self.submitted)
    }

    /// Time the engine spent on data movement and the operation.
    pub fn processing_time(&self) -> SimDuration {
        self.data_done.saturating_duration_since(self.dispatched)
    }

    /// Time the engine spent translating addresses before data moved.
    pub fn translate_time(&self) -> SimDuration {
        self.translated.saturating_duration_since(self.dispatched)
    }

    /// Time spent streaming data (reads + writes, including any UPI hop).
    pub fn stream_time(&self) -> SimDuration {
        self.data_done.saturating_duration_since(self.translated)
    }

    /// Total device-side latency.
    pub fn total(&self) -> SimDuration {
        self.completed.saturating_duration_since(self.submitted)
    }
}

/// Result of one accepted descriptor.
#[derive(Clone, Debug)]
pub struct Execution {
    /// The completion record contents.
    pub record: CompletionRecord,
    /// Phase timestamps.
    pub timeline: ExecTimeline,
}

/// Result of an accepted batch.
#[derive(Clone, Debug)]
pub struct BatchExecution {
    /// Per-descriptor completion records, in submission order.
    pub records: Vec<CompletionRecord>,
    /// The batch-granular completion record.
    pub batch_record: CompletionRecord,
    /// When the batch completion record became visible.
    pub completed: SimTime,
    /// Batch phase timestamps (descriptor fetch treated as processing).
    pub timeline: ExecTimeline,
}

/// One entry of the descriptor trace ring (debug/observability aid — the
/// software equivalent of watching completion records fly by).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceEntry {
    /// Monotone per-device sequence number.
    pub seq: u64,
    /// WQ the descriptor entered through.
    pub wq: usize,
    /// Operation.
    pub opcode: Opcode,
    /// Nominal transfer size.
    pub xfer_size: u32,
    /// Portal-accept time.
    pub submitted: SimTime,
    /// Completion-record visibility time.
    pub completed: SimTime,
    /// Final status.
    pub status: Status,
}

/// PCM-style device telemetry (paper §5: "DSA performance telemetry ...
/// provided by the PCM library").
#[derive(Clone, Copy, Debug, Default)]
pub struct Telemetry {
    /// Work descriptors processed (batch members included).
    pub descriptors: u64,
    /// Batch descriptors processed.
    pub batches: u64,
    /// Inbound (read) bytes.
    pub bytes_read: u64,
    /// Outbound (written) bytes.
    pub bytes_written: u64,
    /// Page faults encountered.
    pub page_faults: u64,
    /// Descriptors that ended in a non-success status.
    pub errors: u64,
    /// Address-translation-cache hits.
    pub atc_hits: u64,
    /// Address-translation-cache misses (IOMMU walks).
    pub atc_misses: u64,
    /// Submissions refused with [`SubmitError::WqFull`] (ENQCMD Retry for
    /// shared WQs; software occupancy violations for dedicated WQs). The
    /// shared-WQ contention signal behind the paper's Fig. 9/10 QoS story.
    pub wq_rejections: u64,
}

struct GroupState {
    engines: MultiServer,
    read_buffers: u32,
    /// Shared MLP cursor: the group's read buffers stream reads at most at
    /// `engines x buffers x entry / latency` in aggregate.
    mlp_free: SimTime,
}

struct WqState {
    cfg: crate::config::WqConfig,
    window: SlidingWindow,
    enqcmd_port: dsa_sim::timeline::Timeline,
    /// Submissions this WQ refused with `WqFull` (per-queue back-pressure
    /// accounting for multi-tenant admission control).
    full_rejections: u64,
}

/// One DSA instance.
pub struct DsaDevice {
    id: u16,
    socket: u8,
    caps: DeviceCaps,
    timing: DsaTiming,
    fabric_rd: BwResource,
    fabric_wr: BwResource,
    groups: Vec<GroupState>,
    wqs: Vec<WqState>,
    atc: TranslationCache,
    telemetry: Telemetry,
    last_completion: SimTime,
    trace: std::collections::VecDeque<TraceEntry>,
    trace_capacity: usize,
    trace_seq: u64,
    hub: Option<Hub>,
}

/// Chunk size for the intra-descriptor read→write pipeline.
const PIPE_CHUNK: u64 = 16 * 1024;

impl DsaDevice {
    /// Builds device `id` with `config` (validated against DSA 1.0 caps).
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation — construct through
    /// `dsa-core::config` for error handling.
    pub fn new(id: u16, config: DeviceConfig, platform: &Platform) -> DsaDevice {
        Self::with_timing(id, config, platform, DsaTiming::spr())
    }

    /// Builds with explicit timing (ablations, CBDMA-style derates).
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation; [`try_with_timing`]
    /// (Self::try_with_timing) is the fallible path.
    pub fn with_timing(
        id: u16,
        config: DeviceConfig,
        platform: &Platform,
        timing: DsaTiming,
    ) -> DsaDevice {
        // dsa-lint: allow(unwrap, documented panicking constructor; try_with_timing is the fallible path)
        Self::try_with_timing(id, config, platform, timing).expect("invalid device configuration")
    }

    /// Builds with explicit timing, surfacing configuration errors instead
    /// of panicking.
    ///
    /// # Errors
    ///
    /// Returns the [`ConfigError`] from validating `config` against the
    /// DSA 1.0 capabilities.
    pub fn try_with_timing(
        id: u16,
        config: DeviceConfig,
        platform: &Platform,
        timing: DsaTiming,
    ) -> Result<DsaDevice, ConfigError> {
        let caps = DeviceCaps::dsa1();
        config.validate(&caps)?;
        let groups = config
            .groups
            .iter()
            .map(|g| GroupState {
                engines: MultiServer::new(g.engines.max(1) as usize),
                read_buffers: g.read_buffers_per_engine.unwrap_or(timing.read_buffers),
                mlp_free: SimTime::ZERO,
            })
            .collect();
        let wqs = config
            .wqs
            .iter()
            .map(|&cfg| WqState {
                cfg,
                window: SlidingWindow::new(cfg.size as usize),
                enqcmd_port: dsa_sim::timeline::Timeline::new(),
                full_rejections: 0,
            })
            .collect();
        Ok(DsaDevice {
            id,
            socket: (id % u16::from(platform.sockets.max(1))) as u8,
            caps,
            timing,
            fabric_rd: BwResource::new(timing.fabric_mgbps),
            fabric_wr: BwResource::new(timing.fabric_mgbps),
            groups,
            wqs,
            atc: TranslationCache::new(128, platform.iommu_walk),
            telemetry: Telemetry::default(),
            last_completion: SimTime::ZERO,
            trace: std::collections::VecDeque::new(),
            trace_capacity: 0,
            trace_seq: 0,
            hub: None,
        })
    }

    /// Attaches a telemetry hub; every descriptor processed from now on
    /// emits a lifecycle span plus per-WQ/per-PE metrics into it.
    pub fn attach_hub(&mut self, hub: Hub) {
        self.hub = Some(hub);
    }

    /// The attached telemetry hub, if any.
    pub fn hub(&self) -> Option<&Hub> {
        self.hub.as_ref()
    }

    /// Keeps the last `capacity` processed descriptors in a trace ring
    /// (0 disables tracing, the default).
    pub fn set_trace_capacity(&mut self, capacity: usize) {
        self.trace_capacity = capacity;
        self.trace.truncate(capacity);
    }

    /// The descriptor trace, oldest first.
    pub fn trace(&self) -> impl Iterator<Item = &TraceEntry> {
        self.trace.iter()
    }

    /// Device instance id.
    pub fn id(&self) -> u16 {
        self.id
    }

    /// The memory-system agent identity of this device.
    pub fn agent(&self) -> AgentId {
        AgentId::dsa(self.id)
    }

    /// Device timing parameters.
    pub fn timing(&self) -> &DsaTiming {
        &self.timing
    }

    /// Device capabilities (transfer/batch limits) — what
    /// [`Descriptor::validate`](crate::descriptor::Descriptor::validate)
    /// checks against, exposed so submit-side program compilers can
    /// validate once at prepare time instead of per submission.
    pub fn caps(&self) -> &DeviceCaps {
        &self.caps
    }

    /// Telemetry counters.
    pub fn telemetry(&self) -> Telemetry {
        self.telemetry
    }

    /// Number of configured WQs.
    pub fn wq_count(&self) -> usize {
        self.wqs.len()
    }

    /// The mode of WQ `wq`.
    ///
    /// # Panics
    ///
    /// Panics if `wq` is out of range.
    pub fn wq_mode(&self, wq: WqId) -> WqMode {
        self.wqs[wq.0].cfg.mode
    }

    /// Completion time of the most recently finished descriptor
    /// (drain semantics).
    pub fn last_completion(&self) -> SimTime {
        self.last_completion
    }

    /// The socket this instance hangs off (instances are distributed
    /// round-robin across the platform's sockets, as on real two-die SPR
    /// parts with two DSA instances per socket).
    pub fn socket(&self) -> u8 {
        self.socket
    }

    /// Descriptors occupying slots of WQ `wq` whose completion lies after
    /// `now` — the WQ occupancy a load balancer sees.
    ///
    /// # Panics
    ///
    /// Panics if `wq` is out of range.
    pub fn wq_pending(&self, wq: WqId, now: SimTime) -> usize {
        self.wqs[wq.0].window.pending_at(now)
    }

    /// Submissions WQ `wq` has refused with [`SubmitError::WqFull`] so far
    /// (per-queue back-pressure; admission controllers read this to size
    /// retry budgets).
    ///
    /// # Panics
    ///
    /// Panics if `wq` is out of range.
    pub fn wq_full_events(&self, wq: WqId) -> u64 {
        self.wqs[wq.0].full_rejections
    }

    fn record_wq_full(&mut self, wq: WqId) {
        self.wqs[wq.0].full_rejections += 1;
        self.telemetry.wq_rejections += 1;
        if let Some(hub) = &self.hub {
            hub.counter_add("wq_full", Labels::wq(self.id, wq.0 as u16), 1);
        }
    }

    /// Descriptors still in flight across all WQs at `now`.
    pub fn pending_descriptors(&self, now: SimTime) -> usize {
        self.wqs.iter().map(|w| w.window.pending_at(now)).sum()
    }

    /// The earliest instant any engine of any group could begin new work.
    pub fn engines_next_free(&self) -> SimTime {
        self.groups.iter().map(|g| g.engines.next_free()).min().unwrap_or(SimTime::ZERO)
    }

    /// Cumulative busy time summed over every engine of every group.
    pub fn engines_busy_time(&self) -> SimDuration {
        self.groups.iter().map(|g| g.engines.busy_time()).fold(SimDuration::ZERO, |a, b| a + b)
    }

    /// Total engines across all groups.
    pub fn engine_count(&self) -> usize {
        self.groups.iter().map(|g| g.engines.servers()).sum()
    }

    /// Reserves the device-side ENQCMD acceptance port of `wq` for a
    /// non-posted submission issued at `issue`; returns when the device
    /// has accepted (or rejected) the command.
    ///
    /// Shared WQs serialize ENQCMD acceptance at the portal; with many
    /// submitting threads the aggregate rate is bounded by this port
    /// (paper Fig. 9: `SWQ: N` scaling).
    ///
    /// # Errors
    ///
    /// [`SubmitError::UnknownWq`] if `wq` is out of range.
    pub fn enqcmd_accept(&mut self, wq: WqId, issue: SimTime) -> Result<SimTime, SubmitError> {
        self.check_wq(wq)?;
        let occupancy = SimDuration::from_ns(40);
        Ok(self.wqs[wq.0].enqcmd_port.reserve(issue, occupancy).end)
    }

    /// Probes whether WQ `wq` could accept a descriptor at `now`
    /// (the ENQCMD retry bit).
    ///
    /// # Errors
    ///
    /// [`SubmitError::UnknownWq`] if `wq` is out of range.
    pub fn wq_available_at(&self, wq: WqId, now: SimTime) -> Result<SimTime, SubmitError> {
        let state = self.wqs.get(wq.0).ok_or(SubmitError::UnknownWq { wq: wq.0 })?;
        Ok(state.window.available_at(now))
    }

    /// Submits one work descriptor to `wq` at `now` and processes it to
    /// completion (timing computed against `memsys`; contents mutated in
    /// `memory`).
    ///
    /// # Errors
    ///
    /// See [`SubmitError`]. A full WQ returns [`SubmitError::WqFull`]
    /// (ENQCMD Retry for shared WQs; software-tracked occupancy violation
    /// for dedicated WQs).
    pub fn submit(
        &mut self,
        memory: &mut Memory,
        memsys: &mut MemSystem,
        wq: WqId,
        desc: &Descriptor,
        now: SimTime,
    ) -> Result<Execution, SubmitError> {
        self.check_wq(wq)?;
        if desc.xfer_size as u64 > self.caps.max_transfer as u64 {
            return Err(SubmitError::TooLarge {
                size: desc.xfer_size as u64,
                max: self.caps.max_transfer,
            });
        }
        if desc.opcode == Opcode::Batch {
            return Err(SubmitError::NestedBatch);
        }
        // Structural spec violations are refused at the portal; content
        // errors fall through so the engine reports InvalidDescriptor in
        // the completion record, as hardware does.
        if let Err(e) = desc.validate(&self.caps) {
            if !e.reported_in_completion() {
                return Err(SubmitError::Rejected(e));
            }
        }
        let submitted = now + self.timing.portal_accept;
        let slot = self.wqs[wq.0].window.available_at(submitted);
        if slot > submitted {
            self.record_wq_full(wq);
            return Err(SubmitError::WqFull { retry_at: slot });
        }
        let admitted = self.wqs[wq.0].window.acquire(submitted);
        let exec = self.process(memory, memsys, wq, desc, submitted, admitted);
        self.wqs[wq.0].window.release(exec.timeline.data_done);
        Ok(exec)
    }

    /// Submits a batch of descriptors (one batch descriptor occupying one
    /// WQ slot; paper §3.4/F2).
    ///
    /// # Errors
    ///
    /// See [`SubmitError`].
    pub fn submit_batch(
        &mut self,
        memory: &mut Memory,
        memsys: &mut MemSystem,
        wq: WqId,
        batch: &BatchDescriptor,
        descs: &[Descriptor],
        now: SimTime,
    ) -> Result<BatchExecution, SubmitError> {
        self.check_wq(wq)?;
        if descs.len() < 2 || descs.len() > self.caps.max_batch as usize {
            return Err(SubmitError::BadBatchSize { count: descs.len() });
        }
        if descs.iter().any(|d| d.opcode == Opcode::Batch) {
            return Err(SubmitError::NestedBatch);
        }
        if let Some(d) = descs.iter().find(|d| d.xfer_size as u64 > self.caps.max_transfer as u64) {
            return Err(SubmitError::TooLarge {
                size: d.xfer_size as u64,
                max: self.caps.max_transfer,
            });
        }
        batch.validate(&self.caps)?;
        for d in descs {
            if let Err(e) = d.validate_in_batch(&self.caps) {
                if !e.reported_in_completion() {
                    return Err(SubmitError::Rejected(e));
                }
            }
        }
        let submitted = now + self.timing.portal_accept;
        let slot = self.wqs[wq.0].window.available_at(submitted);
        if slot > submitted {
            self.record_wq_full(wq);
            return Err(SubmitError::WqFull { retry_at: slot });
        }
        let admitted = self.wqs[wq.0].window.acquire(submitted);

        // Batch engine fetches the descriptor array from memory in one read.
        let list_loc = memory.location_of(batch.desc_list_addr).unwrap_or(Location::local_dram());
        let fetch = memsys.read(
            self.agent(),
            list_loc,
            admitted + self.timing.batch_fixed,
            64 * descs.len() as u64,
        );
        self.telemetry.batches += 1;
        self.telemetry.bytes_read += 64 * descs.len() as u64;
        if let Some(hub) = &self.hub {
            hub.span(
                Track::Wq { device: self.id, wq: wq.0 as u16 },
                "batch_fetch",
                admitted,
                fetch.end,
            );
            hub.counter_add("batches", Labels::wq(self.id, wq.0 as u16), 1);
        }

        // Sub-descriptors dispatch across the group's engines; a FENCE flag
        // orders a descriptor after all prior completions in the batch.
        let mut records = Vec::with_capacity(descs.len());
        let mut last_done = fetch.end;
        let mut max_done = fetch.end;
        let mut all_ok = true;
        let mut completed_count = 0u32;
        for d in descs {
            let ready = if d.flags.contains(Flags::FENCE) { max_done } else { fetch.end };
            let exec = self.process(memory, memsys, wq, d, ready, ready);
            max_done = max_done.max(exec.timeline.data_done);
            last_done = exec.timeline.data_done;
            if exec.record.status.is_ok() {
                completed_count += 1;
            } else {
                all_ok = false;
            }
            records.push(exec.record);
        }
        let _ = last_done;
        let completed = max_done + self.timing.completion_write + memsys.platform().llc_latency;
        self.wqs[wq.0].window.release(max_done);
        self.last_completion = self.last_completion.max(completed);
        let batch_record = CompletionRecord {
            status: if all_ok { Status::Success } else { Status::InvalidDescriptor },
            bytes_completed: completed_count,
            result: descs.len() as u64,
        };
        Ok(BatchExecution {
            records,
            batch_record,
            completed,
            timeline: ExecTimeline {
                submitted,
                admitted,
                dispatched: fetch.end,
                // Batches do their translation per child descriptor; the
                // batch-granular view folds it into the streaming window.
                translated: fetch.end,
                read_done: max_done,
                data_done: max_done,
                completed,
            },
        })
    }

    fn check_wq(&self, wq: WqId) -> Result<(), SubmitError> {
        if wq.0 >= self.wqs.len() {
            return Err(SubmitError::UnknownWq { wq: wq.0 });
        }
        Ok(())
    }

    /// Core datapath: queue → arbiter → engine → memory → completion.
    fn process(
        &mut self,
        memory: &mut Memory,
        memsys: &mut MemSystem,
        wq: WqId,
        desc: &Descriptor,
        submitted: SimTime,
        admitted: SimTime,
    ) -> Execution {
        self.telemetry.descriptors += 1;
        let agent = self.agent();
        let group_idx = self.wqs[wq.0].cfg.group;
        let priority = self.wqs[wq.0].cfg.priority;

        // Functional execution first: produces the completion record
        // contents and the fault information that shapes timing.
        let outcome = self.execute_functional(memory, memsys, desc);

        // Arbitration: higher-priority WQs get a small dispatch head start
        // (weighted arbitration approximation; see DESIGN.md §7).
        let bias = SimDuration::from_ns(2 * (priority as u64));
        let arb_ready = (admitted + self.timing.dispatch).max(admitted + bias) - bias;

        let bytes_read = desc.bytes_read();
        let bytes_written = (desc.xfer_size as u64).min(outcome.bytes_valid as u64)
            * desc.bytes_written()
            / (desc.xfer_size as u64).max(1);
        let pe_busy = self.timing.pe_fixed
            + transfer_time_mgbps(bytes_read.max(bytes_written), self.timing.pe_mgbps);
        let pe = self.groups[group_idx].engines.reserve(arb_ready, pe_busy);
        let dispatched = pe.start;

        // Address translation: the first ATC miss exposes one IOMMU walk;
        // later walks pipeline behind data streaming. Page faults expose
        // their full service time (block-on-fault) or truncate the
        // operation (partial completion) — `execute_functional` already
        // decided which.
        let mut ready = dispatched;
        let pt_cost = self.translate_cost(memsys, desc);
        ready += pt_cost;
        if outcome.faults > 0 {
            self.telemetry.page_faults += outcome.faults;
            if desc.flags.contains(Flags::BLOCK_ON_FAULT) {
                ready += memsys.platform().page_fault.saturating_mul(outcome.faults);
            }
        }
        // Span boundary: translation (ATC/IOMMU walks + fault service) ends
        // here; data streaming starts.
        let translated = ready;

        // Stream the data: read chunks race the engine's MLP limit and the
        // platform memory system; writes chase the reads chunk by chunk.
        let src_loc = memory.location_of(desc.src).unwrap_or(Location::local_dram());
        let dst_loc = memory.location_of(desc.dst).unwrap_or(Location::local_dram());
        let mlp_mgbps = {
            let t = &self.timing;
            let g = &self.groups[group_idx];
            let buffers = g.read_buffers as u64 * g.engines.servers() as u64;
            let lat = memsys.read_latency(src_loc);
            if lat.is_zero() {
                t.fabric_mgbps
            } else {
                (buffers * t.read_buffer_bytes as u64) * 1_000_000 / lat.as_ps().max(1)
            }
        };
        let write_policy = if desc.flags.contains(Flags::CACHE_CONTROL) {
            WritePolicy::AllocateLlc
        } else {
            WritePolicy::Memory
        };
        let same_channel = matches!((src_loc, dst_loc),
            (Location::Dram { socket: a }, Location::Dram { socket: b }) if a == b);

        let mut data_done = ready;
        let mut read_done = ready;
        let mut remaining_r = bytes_read;
        let mut remaining_w = bytes_written;
        let mut chunk_ready = ready;
        while remaining_r > 0 || remaining_w > 0 {
            let r = remaining_r.min(PIPE_CHUNK);
            let w = remaining_w.min(PIPE_CHUNK);
            remaining_r -= r;
            remaining_w -= w;
            let mut arrived = chunk_ready;
            if r > 0 {
                let f = self.fabric_rd.transfer(chunk_ready, r);
                let m = memsys.read(agent, src_loc, chunk_ready, r);
                let g = &mut self.groups[group_idx];
                g.mlp_free = g.mlp_free.max(chunk_ready) + transfer_time_mgbps(r, mlp_mgbps);
                arrived = f.end.max(m.end).max(g.mlp_free);
                read_done = read_done.max(arrived);
                self.telemetry.bytes_read += r;
            }
            if w > 0 {
                let waddr = desc.dst + (bytes_written - remaining_w - w);
                let wo = memsys.write_at(agent, dst_loc, arrived, waddr, w, write_policy);
                // DDIO spill causes write-allocate stalls on the fabric;
                // same-channel read+write streams contend slightly.
                let mut derate = 1.0 + self.timing.spill_derate * wo.ddio_spill;
                if same_channel {
                    derate *= self.timing.same_channel_penalty;
                }
                let fw = self.fabric_wr.transfer(arrived, scale_bytes(w, derate));
                arrived = wo.interval.end.max(fw.end);
                self.telemetry.bytes_written += w;
            }
            data_done = data_done.max(arrived);
            chunk_ready =
                arrived.min(chunk_ready + transfer_time_mgbps(r.max(w), self.timing.pe_mgbps));
        }
        let mut data_done = data_done.max(pe.end);
        // Drain semantics: completes only after everything previously
        // submitted to the device has completed.
        if desc.opcode == Opcode::Drain {
            data_done = data_done.max(self.last_completion);
        }

        // Completion record: always LLC-directed (paper §6.2/G3).
        let completed = data_done + self.timing.completion_write + memsys.platform().llc_latency;
        self.last_completion = self.last_completion.max(completed);
        if !outcome.record.status.is_ok() {
            self.telemetry.errors += 1;
        }
        // Write the completion record to its memory address (the real
        // mechanism polling and UMONITOR observe). Best-effort: an
        // unmapped completion address simply produces no record, exactly
        // like hardware writing into a torn-down mapping.
        if desc.completion_addr != 0 && desc.flags.contains(Flags::REQUEST_COMPLETION) {
            let _ = memory.write(desc.completion_addr, &outcome.record.to_bytes());
        }
        if self.trace_capacity > 0 {
            if self.trace.len() == self.trace_capacity {
                self.trace.pop_front();
            }
            self.trace_seq += 1;
            self.trace.push_back(TraceEntry {
                seq: self.trace_seq,
                wq: wq.0,
                opcode: desc.opcode,
                xfer_size: desc.xfer_size,
                submitted,
                completed,
                status: outcome.record.status,
            });
        }
        if let Some(hub) = &self.hub {
            let servers = self.groups[group_idx].engines.servers();
            // The engine pool is indistinguishable (earliest-free wins),
            // so attribute work round-robin for per-PE metrics.
            let pe_idx = ((self.telemetry.descriptors - 1) % servers as u64) as u16;
            hub.record_descriptor(DescriptorSpan {
                device: self.id,
                wq: wq.0 as u16,
                pe: pe_idx,
                seq: self.telemetry.descriptors,
                op: desc.opcode.mnemonic(),
                xfer_size: desc.xfer_size,
                marks: [
                    submitted, admitted, dispatched, translated, read_done, data_done, completed,
                ],
            });
            // Utilization timelines: WQ depth at admission (FIFO view of
            // tracked holders) and the group's cumulative PE occupancy.
            hub.series_push(
                "wq_depth",
                Labels::wq(self.id, wq.0 as u16),
                admitted,
                self.wqs[wq.0].window.in_flight() as f64,
            );
            let busy = self.groups[group_idx].engines.busy_time();
            let util = busy.as_ns_f64() / (servers as f64 * completed.as_ns_f64()).max(1.0);
            hub.series_push("pe_occupancy", Labels::device(self.id), completed, util.min(1.0));
        }

        Execution {
            record: outcome.record,
            timeline: ExecTimeline {
                submitted,
                admitted,
                dispatched,
                translated,
                read_done,
                data_done,
                completed,
            },
        }
    }

    /// Exposed translation cost: one walk if the leading page missed the
    /// ATC (subsequent sequential walks hide behind streaming).
    fn translate_cost(&mut self, memsys: &MemSystem, desc: &Descriptor) -> SimDuration {
        let mut cost = SimDuration::ZERO;
        let mut first = true;
        for addr in [desc.src, desc.dst] {
            if addr == 0 {
                continue;
            }
            let out = self.atc.translate(memsys.page_table(), addr);
            if out.hit {
                self.telemetry.atc_hits += 1;
            } else {
                self.telemetry.atc_misses += 1;
            }
            if first && !out.hit {
                cost += out.cost;
            }
            first = false;
        }
        cost
    }

    /// Runs the operation functionally and classifies faults.
    fn execute_functional(
        &mut self,
        memory: &mut Memory,
        memsys: &mut MemSystem,
        desc: &Descriptor,
    ) -> FunctionalOutcome {
        let len = desc.xfer_size as u64;
        // Fault scan: the device stops at the first non-present page
        // (partial completion) or, with BLOCK_ON_FAULT, waits for service.
        let mut faults = 0u64;
        let mut fault_addr = None;
        for base in [desc.src, desc.dst] {
            if base == 0 || len == 0 {
                continue;
            }
            let pt = memsys.page_table();
            let mut a = base;
            while a < base + len {
                if pt.lookup(a).is_some() && !pt.is_present(a) {
                    faults += 1;
                    if fault_addr.is_none() {
                        fault_addr = Some(a);
                    }
                }
                a += 4096;
            }
        }
        // Partial completion at the first faulting page (fault_addr is set
        // exactly when faults > 0).
        if let Some(fa) = fault_addr.filter(|_| !desc.flags.contains(Flags::BLOCK_ON_FAULT)) {
            let done = if fa >= desc.src && fa < desc.src + len.max(1) {
                fa - desc.src
            } else if fa >= desc.dst && fa < desc.dst + len.max(1) {
                fa - desc.dst
            } else {
                0
            };
            return FunctionalOutcome {
                record: CompletionRecord {
                    status: Status::PageFault { addr: fa },
                    bytes_completed: done as u32,
                    result: 0,
                },
                bytes_valid: done as u32,
                faults,
            };
        }
        if faults > 0 {
            // Block-on-fault: service every fault, then run normally.
            for base in [desc.src, desc.dst] {
                if base == 0 || len == 0 {
                    continue;
                }
                let mut a = base;
                while a < base + len {
                    memsys.page_table_mut().service_fault(a);
                    a += 4096;
                }
            }
        }

        let record = self.run_op(memory, memsys, desc);
        let bytes_valid = record.bytes_completed;
        FunctionalOutcome { record, bytes_valid, faults }
    }

    fn run_op(
        &mut self,
        memory: &mut Memory,
        memsys: &mut MemSystem,
        desc: &Descriptor,
    ) -> CompletionRecord {
        let len = desc.xfer_size as u64;
        let invalid =
            CompletionRecord { status: Status::InvalidDescriptor, bytes_completed: 0, result: 0 };
        match desc.opcode {
            Opcode::Nop | Opcode::Drain => CompletionRecord::success(0),
            Opcode::Batch => invalid,
            Opcode::Memmove => match memory.copy(desc.src, desc.dst, len) {
                Ok(()) => CompletionRecord::success(desc.xfer_size),
                Err(_) => invalid,
            },
            Opcode::Fill => {
                let OpParams::Pattern(p) = desc.params else { return invalid };
                match memory.read_mut(desc.dst, len) {
                    Ok(buf) => {
                        memops::fill(buf, p);
                        CompletionRecord::success(desc.xfer_size)
                    }
                    Err(_) => invalid,
                }
            }
            Opcode::Compare => {
                let (Ok(a), Ok(b)) = (memory.read(desc.src, len), memory.read(desc.dst, len))
                else {
                    return invalid;
                };
                match memops::compare(a, b) {
                    None => CompletionRecord::success(desc.xfer_size),
                    Some(off) => CompletionRecord {
                        status: Status::CompareMismatch,
                        bytes_completed: desc.xfer_size,
                        result: off as u64,
                    },
                }
            }
            Opcode::ComparePattern => {
                let OpParams::Pattern(p) = desc.params else { return invalid };
                let Ok(buf) = memory.read(desc.src, len) else { return invalid };
                match memops::compare_pattern(buf, p) {
                    None => CompletionRecord::success(desc.xfer_size),
                    Some(off) => CompletionRecord {
                        status: Status::CompareMismatch,
                        bytes_completed: desc.xfer_size,
                        result: off as u64,
                    },
                }
            }
            Opcode::Dualcast => {
                let OpParams::Dest2(d2) = desc.params else { return invalid };
                if memory.copy(desc.src, desc.dst, len).is_err()
                    || memory.copy(desc.src, d2, len).is_err()
                {
                    return invalid;
                }
                CompletionRecord::success(desc.xfer_size)
            }
            Opcode::CrcGen | Opcode::CopyCrc => {
                let seed = match desc.params {
                    OpParams::CrcSeed(s) => s,
                    _ => 0,
                };
                let Ok(src) = memory.read(desc.src, len) else { return invalid };
                let mut crc = if seed == 0 { Crc32c::new() } else { Crc32c::with_seed(seed) };
                crc.update(src);
                let value = crc.finish();
                if desc.opcode == Opcode::CopyCrc && memory.copy(desc.src, desc.dst, len).is_err() {
                    return invalid;
                }
                CompletionRecord {
                    status: Status::Success,
                    bytes_completed: desc.xfer_size,
                    result: value as u64,
                }
            }
            Opcode::CreateDelta => {
                let OpParams::Delta { record_addr, max_size } = desc.params else {
                    return invalid;
                };
                let (Ok(a), Ok(b)) = (memory.read(desc.src, len), memory.read(desc.dst, len))
                else {
                    return invalid;
                };
                match delta::delta_create(a, b, max_size as usize) {
                    Ok(rec) => {
                        let size = rec.size_bytes();
                        if memory.write(record_addr, rec.as_bytes()).is_err() {
                            return invalid;
                        }
                        CompletionRecord {
                            status: Status::Success,
                            bytes_completed: desc.xfer_size,
                            result: size as u64,
                        }
                    }
                    Err(delta::DeltaError::RecordOverflow { needed, .. }) => CompletionRecord {
                        status: Status::DeltaOverflow,
                        bytes_completed: 0,
                        result: needed as u64,
                    },
                    Err(_) => invalid,
                }
            }
            Opcode::ApplyDelta => {
                let OpParams::Delta { record_addr, max_size } = desc.params else {
                    return invalid;
                };
                let Ok(raw) = memory.read(record_addr, max_size as u64) else { return invalid };
                let Ok(rec) = delta::DeltaRecord::from_bytes(raw) else { return invalid };
                let rec = rec.clone();
                let Ok(target) = memory.read_mut(desc.dst, len) else { return invalid };
                match delta::delta_apply(&rec, target) {
                    Ok(()) => CompletionRecord::success(desc.xfer_size),
                    Err(_) => invalid,
                }
            }
            Opcode::DifCheck | Opcode::DifInsert | Opcode::DifStrip | Opcode::DifUpdate => {
                let OpParams::Dif(cfg) = &desc.params else { return invalid };
                let Ok(src) = memory.read(desc.src, len) else { return invalid };
                let src = src.to_vec();
                match desc.opcode {
                    Opcode::DifInsert => match dif::dif_insert(cfg, &src) {
                        Ok(out) => {
                            if memory.write(desc.dst, &out).is_err() {
                                return invalid;
                            }
                            CompletionRecord::success(desc.xfer_size)
                        }
                        Err(_) => invalid,
                    },
                    Opcode::DifCheck => match dif::dif_check(cfg, &src) {
                        Ok(()) => CompletionRecord::success(desc.xfer_size),
                        Err(dif::DifCheckError::Dif(e)) => CompletionRecord {
                            status: Status::DifError,
                            bytes_completed: (e.block * (cfg.block.bytes() + 8)) as u32,
                            result: e.block as u64,
                        },
                        Err(_) => invalid,
                    },
                    Opcode::DifStrip => match dif::dif_strip(cfg, &src) {
                        Ok(out) => {
                            if memory.write(desc.dst, &out).is_err() {
                                return invalid;
                            }
                            CompletionRecord::success(desc.xfer_size)
                        }
                        Err(dif::DifCheckError::Dif(e)) => CompletionRecord {
                            status: Status::DifError,
                            bytes_completed: 0,
                            result: e.block as u64,
                        },
                        Err(_) => invalid,
                    },
                    Opcode::DifUpdate => match dif::dif_update(cfg, cfg, &src) {
                        Ok(out) => {
                            if memory.write(desc.dst, &out).is_err() {
                                return invalid;
                            }
                            CompletionRecord::success(desc.xfer_size)
                        }
                        Err(dif::DifCheckError::Dif(e)) => CompletionRecord {
                            status: Status::DifError,
                            bytes_completed: 0,
                            result: e.block as u64,
                        },
                        Err(_) => invalid,
                    },
                    _ => unreachable!("outer match restricts opcodes"),
                }
            }
            Opcode::CacheFlush => {
                let flushed = memsys.llc_mut().flush_range(desc.dst, len);
                CompletionRecord {
                    status: Status::Success,
                    bytes_completed: desc.xfer_size,
                    result: flushed,
                }
            }
        }
    }
}

struct FunctionalOutcome {
    record: CompletionRecord,
    bytes_valid: u32,
    faults: u64,
}

impl std::fmt::Debug for DsaDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DsaDevice")
            .field("id", &self.id)
            .field("wqs", &self.wqs.len())
            .field("groups", &self.groups.len())
            .field("telemetry", &self.telemetry)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{GroupConfig, WqConfig};
    use dsa_mem::buffer::PageSize;
    use dsa_ops::dif::{DifBlockSize, DifConfig};

    struct Rig {
        memory: Memory,
        memsys: MemSystem,
        dev: DsaDevice,
    }

    impl Rig {
        fn new(config: DeviceConfig) -> Rig {
            let platform = Platform::spr();
            Rig {
                memory: Memory::new(),
                memsys: MemSystem::new(platform.clone()),
                dev: DsaDevice::new(0, config, &platform),
            }
        }

        fn alloc(&mut self, len: u64, loc: Location) -> u64 {
            let h = self.memory.alloc(len, loc);
            self.memsys.page_table_mut().map_range(h.addr(), len.max(1), PageSize::Base4K);
            h.addr()
        }

        fn submit(&mut self, desc: &Descriptor, now: SimTime) -> Result<Execution, SubmitError> {
            self.dev.submit(&mut self.memory, &mut self.memsys, WqId(0), desc, now)
        }

        /// Submit, retrying when the WQ is full (what real submitters do).
        fn submit_retry(&mut self, desc: &Descriptor, now: SimTime) -> Execution {
            let mut at = now;
            loop {
                match self.submit(desc, at) {
                    Ok(exec) => return exec,
                    Err(SubmitError::WqFull { retry_at }) => at = retry_at,
                    Err(e) => panic!("unexpected submit error: {e}"),
                }
            }
        }
    }

    #[test]
    fn memmove_copies_and_completes() {
        let mut rig = Rig::new(DeviceConfig::single_engine());
        let src = rig.alloc(4096, Location::local_dram());
        let dst = rig.alloc(4096, Location::local_dram());
        rig.memory.read_mut(src, 4096).unwrap().fill(0x42);
        let exec = rig.submit(&Descriptor::memmove(src, dst, 4096), SimTime::ZERO).unwrap();
        assert_eq!(exec.record.status, Status::Success);
        assert_eq!(exec.record.bytes_completed, 4096);
        assert!(rig.memory.read(dst, 4096).unwrap().iter().all(|&b| b == 0x42));
        // Ordering of phases.
        let t = exec.timeline;
        assert!(t.submitted <= t.admitted);
        assert!(t.admitted <= t.dispatched);
        assert!(t.dispatched < t.data_done);
        assert!(t.data_done < t.completed);
    }

    #[test]
    fn sync_4k_latency_in_microsecond_range() {
        let mut rig = Rig::new(DeviceConfig::single_engine());
        let src = rig.alloc(4096, Location::local_dram());
        let dst = rig.alloc(4096, Location::local_dram());
        let exec = rig.submit(&Descriptor::memmove(src, dst, 4096), SimTime::ZERO).unwrap();
        let us = exec.timeline.total().as_us_f64();
        // The paper's sync break-even with a cold-cache CPU memcpy sits at
        // ~4 KB, i.e. device latency of roughly a microsecond.
        assert!((0.3..3.0).contains(&us), "4 KiB sync latency was {us} us");
    }

    #[test]
    fn async_streaming_approaches_fabric_cap() {
        let mut rig = Rig::new(DeviceConfig::single_engine());
        let size = 1u64 << 20;
        let src = rig.alloc(size, Location::local_dram());
        let dst = rig.alloc(size, Location::local_dram());
        let mut now = SimTime::ZERO;
        let mut last = SimTime::ZERO;
        let n = 64u64;
        for _ in 0..n {
            let exec = rig.submit_retry(&Descriptor::memmove(src, dst, size as u32), now);
            last = exec.timeline.completed;
            // Stream submissions without waiting (async, QD within WQ size).
            now += SimDuration::from_ns(60);
        }
        let gbps = (n * size) as f64 / last.as_ns_f64();
        assert!((25.0..31.0).contains(&gbps), "async copy rate {gbps} GB/s");
    }

    #[test]
    fn wq_full_returns_retry_time() {
        let mut rig = Rig::new(DeviceConfig {
            groups: vec![GroupConfig::with_engines(1)],
            wqs: vec![WqConfig::dedicated(2, 0)],
        });
        let size = 1u64 << 20;
        let src = rig.alloc(size, Location::local_dram());
        let dst = rig.alloc(size, Location::local_dram());
        let d = Descriptor::memmove(src, dst, size as u32);
        rig.submit(&d, SimTime::ZERO).unwrap();
        rig.submit(&d, SimTime::ZERO).unwrap();
        match rig.submit(&d, SimTime::ZERO) {
            Err(SubmitError::WqFull { retry_at }) => assert!(retry_at > SimTime::ZERO),
            other => panic!("expected WqFull, got {other:?}"),
        }
        // Rejections are accounted per-WQ and device-wide.
        assert_eq!(rig.dev.wq_full_events(WqId(0)), 1);
        assert_eq!(rig.dev.telemetry().wq_rejections, 1);
    }

    #[test]
    fn crc_gen_returns_checksum() {
        let mut rig = Rig::new(DeviceConfig::single_engine());
        let src = rig.alloc(512, Location::local_dram());
        let data: Vec<u8> = (0..512u32).map(|i| (i * 3) as u8).collect();
        rig.memory.write(src, &data).unwrap();
        let exec = rig.submit(&Descriptor::crc_gen(src, 512), SimTime::ZERO).unwrap();
        assert_eq!(exec.record.result as u32, Crc32c::checksum(&data));
    }

    #[test]
    fn compare_reports_mismatch_offset() {
        let mut rig = Rig::new(DeviceConfig::single_engine());
        let a = rig.alloc(256, Location::local_dram());
        let b = rig.alloc(256, Location::local_dram());
        rig.memory.read_mut(b, 256).unwrap()[100] = 1;
        let exec = rig.submit(&Descriptor::compare(a, b, 256), SimTime::ZERO).unwrap();
        assert_eq!(exec.record.status, Status::CompareMismatch);
        assert_eq!(exec.record.result, 100);
        assert!(exec.record.status.is_ok());
    }

    #[test]
    fn fill_and_compare_pattern() {
        let mut rig = Rig::new(DeviceConfig::single_engine());
        let dst = rig.alloc(128, Location::local_dram());
        let exec =
            rig.submit(&Descriptor::fill(dst, 128, 0x1122_3344_5566_7788), SimTime::ZERO).unwrap();
        assert_eq!(exec.record.status, Status::Success);
        let d = Descriptor {
            opcode: Opcode::ComparePattern,
            flags: Flags::REQUEST_COMPLETION,
            src: dst,
            dst: 0,
            xfer_size: 128,
            completion_addr: 0,
            params: OpParams::Pattern(0x1122_3344_5566_7788),
        };
        let exec = rig.submit(&d, SimTime::ZERO).unwrap();
        assert_eq!(exec.record.status, Status::Success);
    }

    #[test]
    fn dualcast_writes_two_destinations() {
        let mut rig = Rig::new(DeviceConfig::single_engine());
        let src = rig.alloc(64, Location::local_dram());
        let d1 = rig.alloc(64, Location::local_dram());
        let d2 = rig.alloc(64, Location::local_dram());
        rig.memory.read_mut(src, 64).unwrap().fill(9);
        let d = Descriptor {
            opcode: Opcode::Dualcast,
            flags: Flags::REQUEST_COMPLETION,
            src,
            dst: d1,
            xfer_size: 64,
            completion_addr: 0,
            params: OpParams::Dest2(d2),
        };
        rig.submit(&d, SimTime::ZERO).unwrap();
        assert_eq!(rig.memory.read(d1, 64).unwrap(), rig.memory.read(d2, 64).unwrap());
        assert_eq!(rig.memory.read(d1, 64).unwrap()[0], 9);
    }

    #[test]
    fn delta_create_and_apply_through_device() {
        let mut rig = Rig::new(DeviceConfig::single_engine());
        let orig = rig.alloc(256, Location::local_dram());
        let modv = rig.alloc(256, Location::local_dram());
        let rec = rig.alloc(1024, Location::local_dram());
        rig.memory.read_mut(modv, 256).unwrap()[16] = 0xEE;
        let create = Descriptor {
            opcode: Opcode::CreateDelta,
            flags: Flags::REQUEST_COMPLETION,
            src: orig,
            dst: modv,
            xfer_size: 256,
            completion_addr: 0,
            params: OpParams::Delta { record_addr: rec, max_size: 1024 },
        };
        let exec = rig.submit(&create, SimTime::ZERO).unwrap();
        assert_eq!(exec.record.status, Status::Success);
        let rec_size = exec.record.result as u32;
        assert_eq!(rec_size, 10);
        // Apply onto a copy of the original.
        let target = rig.alloc(256, Location::local_dram());
        let apply = Descriptor {
            opcode: Opcode::ApplyDelta,
            flags: Flags::REQUEST_COMPLETION,
            src: 0,
            dst: target,
            xfer_size: 256,
            completion_addr: 0,
            params: OpParams::Delta { record_addr: rec, max_size: rec_size },
        };
        rig.submit(&apply, SimTime::ZERO).unwrap();
        assert_eq!(rig.memory.read(target, 256).unwrap()[16], 0xEE);
    }

    #[test]
    fn delta_overflow_is_reported() {
        let mut rig = Rig::new(DeviceConfig::single_engine());
        let orig = rig.alloc(160, Location::local_dram());
        let modv = rig.alloc(160, Location::local_dram());
        let rec = rig.alloc(64, Location::local_dram());
        rig.memory.read_mut(modv, 160).unwrap().fill(1);
        let create = Descriptor {
            opcode: Opcode::CreateDelta,
            flags: Flags::REQUEST_COMPLETION,
            src: orig,
            dst: modv,
            xfer_size: 160,
            completion_addr: 0,
            params: OpParams::Delta { record_addr: rec, max_size: 64 },
        };
        let exec = rig.submit(&create, SimTime::ZERO).unwrap();
        assert_eq!(exec.record.status, Status::DeltaOverflow);
        assert_eq!(exec.record.result, 200); // 20 units x 10 bytes
    }

    #[test]
    fn dif_insert_check_through_device() {
        let mut rig = Rig::new(DeviceConfig::single_engine());
        let src = rig.alloc(512, Location::local_dram());
        let dst = rig.alloc(520, Location::local_dram());
        rig.memory.read_mut(src, 512).unwrap().fill(0x33);
        let cfg = DifConfig::new(DifBlockSize::B512);
        let insert = Descriptor {
            opcode: Opcode::DifInsert,
            flags: Flags::REQUEST_COMPLETION,
            src,
            dst,
            xfer_size: 512,
            completion_addr: 0,
            params: OpParams::Dif(cfg),
        };
        assert_eq!(rig.submit(&insert, SimTime::ZERO).unwrap().record.status, Status::Success);
        let check = Descriptor {
            opcode: Opcode::DifCheck,
            flags: Flags::REQUEST_COMPLETION,
            src: dst,
            dst: 0,
            xfer_size: 520,
            completion_addr: 0,
            params: OpParams::Dif(cfg),
        };
        assert_eq!(rig.submit(&check, SimTime::ZERO).unwrap().record.status, Status::Success);
        // Corrupt and re-check.
        rig.memory.read_mut(dst, 520).unwrap()[5] ^= 1;
        let exec = rig.submit(&check, SimTime::ZERO).unwrap();
        assert_eq!(exec.record.status, Status::DifError);
        assert!(!exec.record.status.is_ok());
    }

    #[test]
    fn page_fault_partial_completion() {
        let mut rig = Rig::new(DeviceConfig::single_engine());
        let src = rig.alloc(16384, Location::local_dram());
        let dst = rig.alloc(16384, Location::local_dram());
        // Second source page is not present.
        rig.memsys.page_table_mut().unmap_page(src + 4096);
        let exec = rig.submit(&Descriptor::memmove(src, dst, 16384), SimTime::ZERO).unwrap();
        match exec.record.status {
            Status::PageFault { addr } => assert_eq!(addr, src + 4096),
            other => panic!("expected page fault, got {other:?}"),
        }
        assert_eq!(exec.record.bytes_completed, 4096);
        assert_eq!(rig.dev.telemetry().page_faults, 1);
    }

    #[test]
    fn block_on_fault_completes_fully_but_slower() {
        let mut rig = Rig::new(DeviceConfig::single_engine());
        let src = rig.alloc(16384, Location::local_dram());
        let dst = rig.alloc(16384, Location::local_dram());
        rig.memory.read_mut(src, 16384).unwrap().fill(7);
        rig.memsys.page_table_mut().unmap_page(src + 4096);
        let desc = Descriptor::memmove(src, dst, 16384).with_block_on_fault();
        let exec = rig.submit(&desc, SimTime::ZERO).unwrap();
        assert_eq!(exec.record.status, Status::Success);
        assert!(rig.memory.read(dst, 16384).unwrap().iter().all(|&b| b == 7));
        // The exposed fault service time dominates.
        assert!(exec.timeline.total() > Platform::spr().page_fault);
    }

    #[test]
    fn batch_completes_all_members() {
        let mut rig = Rig::new(DeviceConfig::single_engine());
        let size = 4096u64;
        let n = 8;
        let mut descs = Vec::new();
        let list = rig.alloc(64 * n as u64, Location::local_dram());
        for _ in 0..n {
            let s = rig.alloc(size, Location::local_dram());
            let d = rig.alloc(size, Location::local_dram());
            rig.memory.read_mut(s, size).unwrap().fill(5);
            descs.push(Descriptor::memmove(s, d, size as u32));
        }
        let batch = BatchDescriptor {
            desc_list_addr: list,
            count: n as u32,
            completion_addr: 0,
            flags: Flags::REQUEST_COMPLETION,
        };
        let exec = rig
            .dev
            .submit_batch(&mut rig.memory, &mut rig.memsys, WqId(0), &batch, &descs, SimTime::ZERO)
            .unwrap();
        assert_eq!(exec.records.len(), n);
        assert!(exec.records.iter().all(|r| r.status == Status::Success));
        assert_eq!(exec.batch_record.status, Status::Success);
        assert_eq!(exec.batch_record.bytes_completed, n as u32);
        assert_eq!(rig.dev.telemetry().batches, 1);
        assert_eq!(rig.dev.telemetry().descriptors, n as u64);
    }

    #[test]
    fn batch_amortizes_offload_cost() {
        // Total bytes equal; the batch should finish sooner than serial
        // sync submissions (paper §3.4/F2).
        let size = 1024u32;
        let n = 32;

        let mut rig = Rig::new(DeviceConfig::single_engine());
        let mut serial_done = SimTime::ZERO;
        let mut now = SimTime::ZERO;
        for _ in 0..n {
            let s = rig.alloc(size as u64, Location::local_dram());
            let d = rig.alloc(size as u64, Location::local_dram());
            let exec = rig.submit(&Descriptor::memmove(s, d, size), now).unwrap();
            serial_done = exec.timeline.completed;
            now = serial_done; // sync: wait for completion before next
        }

        let mut rig2 = Rig::new(DeviceConfig::single_engine());
        let list = rig2.alloc(64 * n as u64, Location::local_dram());
        let mut descs = Vec::new();
        for _ in 0..n {
            let s = rig2.alloc(size as u64, Location::local_dram());
            let d = rig2.alloc(size as u64, Location::local_dram());
            descs.push(Descriptor::memmove(s, d, size));
        }
        let batch = BatchDescriptor {
            desc_list_addr: list,
            count: n as u32,
            completion_addr: 0,
            flags: Flags::REQUEST_COMPLETION,
        };
        let exec = rig2
            .dev
            .submit_batch(
                &mut rig2.memory,
                &mut rig2.memsys,
                WqId(0),
                &batch,
                &descs,
                SimTime::ZERO,
            )
            .unwrap();
        assert!(
            exec.completed < serial_done,
            "batch {:?} should beat serial sync {:?}",
            exec.completed,
            serial_done
        );
    }

    #[test]
    fn more_engines_help_small_transfers() {
        let run = |engines: u32| -> f64 {
            let mut rig = Rig::new(DeviceConfig {
                groups: vec![GroupConfig::with_engines(engines)],
                wqs: vec![WqConfig::dedicated(64, 0)],
            });
            let size = 1024u64;
            let src = rig.alloc(size, Location::local_dram());
            let dst = rig.alloc(size, Location::local_dram());
            let n = 512u64;
            let mut last = SimTime::ZERO;
            let mut now = SimTime::ZERO;
            for _ in 0..n {
                let exec = rig.submit_retry(&Descriptor::memmove(src, dst, size as u32), now);
                last = exec.timeline.completed;
                now += SimDuration::from_ns(55);
            }
            (n * size) as f64 / last.as_ns_f64()
        };
        let one = run(1);
        let four = run(4);
        assert!(four > 1.4 * one, "4 engines {four} GB/s vs 1 engine {one} GB/s");
    }

    #[test]
    fn cache_flush_evicts_lines() {
        let mut rig = Rig::new(DeviceConfig::single_engine());
        let buf = rig.alloc(4096, Location::local_dram());
        // Warm the lines into the LLC model.
        for line in 0..64u64 {
            rig.memsys.llc_mut().access(
                AgentId::core(0),
                buf + line * 64,
                dsa_mem::cache::AllocPolicy::AllocOnMiss,
                dsa_mem::cache::WayMask::ALL,
            );
        }
        let d = Descriptor {
            opcode: Opcode::CacheFlush,
            flags: Flags::REQUEST_COMPLETION,
            src: 0,
            dst: buf,
            xfer_size: 4096,
            completion_addr: 0,
            params: OpParams::None,
        };
        let exec = rig.submit(&d, SimTime::ZERO).unwrap();
        assert_eq!(exec.record.result, 64);
        assert_eq!(rig.memsys.llc().occupancy_bytes(AgentId::core(0)), 0);
    }

    #[test]
    fn invalid_descriptor_and_submit_errors() {
        let mut rig = Rig::new(DeviceConfig::single_engine());
        // Unmapped memory -> invalid descriptor status.
        let d = Descriptor::memmove(0xdead_0000, 0xbeef_0000, 64);
        let exec = rig.submit(&d, SimTime::ZERO).unwrap();
        assert_eq!(exec.record.status, Status::InvalidDescriptor);
        assert_eq!(rig.dev.telemetry().errors, 1);
        // Unknown WQ.
        let err = rig
            .dev
            .submit(&mut rig.memory, &mut rig.memsys, WqId(7), &d, SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, SubmitError::UnknownWq { wq: 7 }));
        // Batch size limits.
        let batch = BatchDescriptor {
            desc_list_addr: 0,
            count: 1,
            completion_addr: 0,
            flags: Flags::empty(),
        };
        let err = rig
            .dev
            .submit_batch(
                &mut rig.memory,
                &mut rig.memsys,
                WqId(0),
                &batch,
                std::slice::from_ref(&d),
                SimTime::ZERO,
            )
            .unwrap_err();
        assert!(matches!(err, SubmitError::BadBatchSize { count: 1 }));
    }

    #[test]
    fn telemetry_counts_bytes() {
        let mut rig = Rig::new(DeviceConfig::single_engine());
        let src = rig.alloc(8192, Location::local_dram());
        let dst = rig.alloc(8192, Location::local_dram());
        rig.submit(&Descriptor::memmove(src, dst, 8192), SimTime::ZERO).unwrap();
        let t = rig.dev.telemetry();
        assert_eq!(t.bytes_read, 8192);
        assert_eq!(t.bytes_written, 8192);
        assert_eq!(t.descriptors, 1);
    }

    #[test]
    fn enqcmd_port_serializes() {
        let mut rig = Rig::new(DeviceConfig {
            groups: vec![GroupConfig::with_engines(1)],
            wqs: vec![WqConfig::shared(32, 0)],
        });
        let a = rig.dev.enqcmd_accept(WqId(0), SimTime::ZERO).unwrap();
        let b = rig.dev.enqcmd_accept(WqId(0), SimTime::ZERO).unwrap();
        assert!(b > a, "second ENQCMD must queue behind the first");
        assert_eq!(rig.dev.wq_mode(WqId(0)), WqMode::Shared);
    }

    #[test]
    fn remote_and_cxl_destinations_order_throughput() {
        let gbps = |dst_loc: Location| -> f64 {
            let mut rig = Rig::new(DeviceConfig::single_engine());
            let size = 1u64 << 20;
            let src = rig.alloc(size, Location::local_dram());
            let dst = rig.alloc(size, dst_loc);
            let mut last = SimTime::ZERO;
            let mut now = SimTime::ZERO;
            for _ in 0..16 {
                let exec = rig.submit_retry(&Descriptor::memmove(src, dst, size as u32), now);
                last = exec.timeline.completed;
                now += SimDuration::from_ns(60);
            }
            (16 * size) as f64 / last.as_ns_f64()
        };
        let local = gbps(Location::local_dram());
        let remote = gbps(Location::remote_dram());
        let cxl = gbps(Location::Cxl);
        assert!(cxl < remote * 0.8, "CXL dst {cxl} should trail remote {remote}");
        assert!(remote <= local * 1.05, "remote {remote} should not beat local {local}");
    }
}

#[cfg(test)]
mod drain_tests {
    use super::*;
    use dsa_mem::buffer::PageSize;

    #[test]
    fn drain_waits_for_prior_descriptors() {
        let platform = Platform::spr();
        let mut memory = Memory::new();
        let mut memsys = MemSystem::new(platform.clone());
        let mut dev = DsaDevice::new(0, DeviceConfig::single_engine(), &platform);
        let src = memory.alloc(1 << 20, Location::local_dram());
        let dst = memory.alloc(1 << 20, Location::local_dram());
        memsys.page_table_mut().map_range(src.addr(), 1 << 20, PageSize::Base4K);
        memsys.page_table_mut().map_range(dst.addr(), 1 << 20, PageSize::Base4K);

        let copy = Descriptor::memmove(src.addr(), dst.addr(), 1 << 20);
        let exec = dev.submit(&mut memory, &mut memsys, WqId(0), &copy, SimTime::ZERO).unwrap();
        let drain = Descriptor {
            opcode: Opcode::Drain,
            flags: Flags::REQUEST_COMPLETION,
            src: 0,
            dst: 0,
            xfer_size: 0,
            completion_addr: 0,
            params: crate::descriptor::OpParams::None,
        };
        let d = dev.submit(&mut memory, &mut memsys, WqId(0), &drain, SimTime::ZERO).unwrap();
        assert!(
            d.timeline.completed >= exec.timeline.completed,
            "drain must not complete before in-flight work: {:?} vs {:?}",
            d.timeline.completed,
            exec.timeline.completed
        );
        assert_eq!(d.record.status, Status::Success);
    }

    #[test]
    fn fence_orders_batch_members() {
        let platform = Platform::spr();
        let mut memory = Memory::new();
        let mut memsys = MemSystem::new(platform.clone());
        let mut dev = DsaDevice::new(0, DeviceConfig::full_device(), &platform);
        let a = memory.alloc(256 << 10, Location::local_dram());
        let b = memory.alloc(256 << 10, Location::local_dram());
        let c = memory.alloc(256 << 10, Location::local_dram());
        for h in [&a, &b, &c] {
            memsys.page_table_mut().map_range(h.addr(), 256 << 10, PageSize::Base4K);
        }
        memory.read_mut(a.addr(), 256 << 10).unwrap().fill(7);

        // Copy a->b, then (fenced) b->c: the fence makes the second copy
        // observe the first's result even across a multi-engine group.
        let first = Descriptor::memmove(a.addr(), b.addr(), 256 << 10);
        let mut second = Descriptor::memmove(b.addr(), c.addr(), 256 << 10);
        second.flags = second.flags | Flags::FENCE;
        let batch = BatchDescriptor {
            desc_list_addr: a.addr(),
            count: 2,
            completion_addr: 0,
            flags: Flags::REQUEST_COMPLETION,
        };
        let exec = dev
            .submit_batch(
                &mut memory,
                &mut memsys,
                WqId(0),
                &batch,
                &[first, second],
                SimTime::ZERO,
            )
            .unwrap();
        assert!(exec.records.iter().all(|r| r.status == Status::Success));
        assert!(memory.read(c.addr(), 256 << 10).unwrap().iter().all(|&x| x == 7));
    }

    #[test]
    fn atc_telemetry_counts() {
        let platform = Platform::spr();
        let mut memory = Memory::new();
        let mut memsys = MemSystem::new(platform.clone());
        let mut dev = DsaDevice::new(0, DeviceConfig::single_engine(), &platform);
        let src = memory.alloc(4096, Location::local_dram());
        let dst = memory.alloc(4096, Location::local_dram());
        memsys.page_table_mut().map_range(src.addr(), 4096, PageSize::Base4K);
        memsys.page_table_mut().map_range(dst.addr(), 4096, PageSize::Base4K);
        let d = Descriptor::memmove(src.addr(), dst.addr(), 4096);
        dev.submit(&mut memory, &mut memsys, WqId(0), &d, SimTime::ZERO).unwrap();
        let t1 = dev.telemetry();
        assert_eq!(t1.atc_misses, 2, "first touch misses for src and dst");
        dev.submit(&mut memory, &mut memsys, WqId(0), &d, SimTime::ZERO).unwrap();
        let t2 = dev.telemetry();
        assert_eq!(t2.atc_hits, 2, "repeat touch hits");
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use dsa_mem::buffer::PageSize;

    #[test]
    fn trace_ring_keeps_the_last_n() {
        let platform = Platform::spr();
        let mut memory = Memory::new();
        let mut memsys = MemSystem::new(platform.clone());
        let mut dev = DsaDevice::new(0, DeviceConfig::single_engine(), &platform);
        dev.set_trace_capacity(4);
        let src = memory.alloc(4096, Location::local_dram());
        let dst = memory.alloc(4096, Location::local_dram());
        memsys.page_table_mut().map_range(src.addr(), 4096, PageSize::Base4K);
        memsys.page_table_mut().map_range(dst.addr(), 4096, PageSize::Base4K);
        for i in 0..7u32 {
            let d = Descriptor::memmove(src.addr(), dst.addr(), 64 * (i + 1));
            dev.submit(&mut memory, &mut memsys, WqId(0), &d, SimTime::ZERO).unwrap();
        }
        let entries: Vec<&TraceEntry> = dev.trace().collect();
        assert_eq!(entries.len(), 4, "ring holds only the capacity");
        // Oldest-first, contiguous sequence ending at the last descriptor.
        assert_eq!(entries.first().unwrap().seq, 4);
        assert_eq!(entries.last().unwrap().seq, 7);
        assert!(entries.windows(2).all(|w| w[0].seq + 1 == w[1].seq));
        assert!(entries.iter().all(|e| e.opcode == Opcode::Memmove));
        assert!(entries.iter().all(|e| e.completed > e.submitted));
        assert_eq!(entries.last().unwrap().xfer_size, 64 * 7);
    }

    #[test]
    fn shrinking_capacity_truncates_then_rotates() {
        let platform = Platform::spr();
        let mut memory = Memory::new();
        let mut memsys = MemSystem::new(platform.clone());
        let mut dev = DsaDevice::new(0, DeviceConfig::single_engine(), &platform);
        dev.set_trace_capacity(8);
        let src = memory.alloc(4096, Location::local_dram());
        let dst = memory.alloc(4096, Location::local_dram());
        memsys.page_table_mut().map_range(src.addr(), 4096, PageSize::Base4K);
        memsys.page_table_mut().map_range(dst.addr(), 4096, PageSize::Base4K);
        for _ in 0..6 {
            let d = Descriptor::memmove(src.addr(), dst.addr(), 256);
            dev.submit(&mut memory, &mut memsys, WqId(0), &d, SimTime::ZERO).unwrap();
        }
        assert_eq!(dev.trace().count(), 6);

        // Shrinking truncates the ring down to the new capacity at once.
        dev.set_trace_capacity(2);
        assert_eq!(dev.trace().count(), 2);

        // Subsequent submissions rotate within the smaller capacity and
        // the sequence numbering keeps advancing monotonically.
        for _ in 0..3 {
            let d = Descriptor::memmove(src.addr(), dst.addr(), 256);
            dev.submit(&mut memory, &mut memsys, WqId(0), &d, SimTime::ZERO).unwrap();
        }
        let entries: Vec<&TraceEntry> = dev.trace().collect();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries.last().unwrap().seq, 9, "9 descriptors traced in total");
        assert!(entries.windows(2).all(|w| w[0].seq < w[1].seq));

        // Capacity zero empties the ring and disables tracing again.
        dev.set_trace_capacity(0);
        assert_eq!(dev.trace().count(), 0);
    }

    #[test]
    fn trace_iterates_oldest_to_newest() {
        let platform = Platform::spr();
        let mut memory = Memory::new();
        let mut memsys = MemSystem::new(platform.clone());
        let mut dev = DsaDevice::new(0, DeviceConfig::single_engine(), &platform);
        dev.set_trace_capacity(16);
        let src = memory.alloc(4096, Location::local_dram());
        let dst = memory.alloc(4096, Location::local_dram());
        memsys.page_table_mut().map_range(src.addr(), 4096, PageSize::Base4K);
        memsys.page_table_mut().map_range(dst.addr(), 4096, PageSize::Base4K);
        let mut at = SimTime::ZERO;
        for _ in 0..5 {
            let d = Descriptor::memmove(src.addr(), dst.addr(), 1024);
            let exec = dev.submit(&mut memory, &mut memsys, WqId(0), &d, at).unwrap();
            at = exec.timeline.completed;
        }
        let entries: Vec<&TraceEntry> = dev.trace().collect();
        assert_eq!(entries.len(), 5);
        assert!(
            entries.windows(2).all(|w| w[0].submitted <= w[1].submitted
                && w[0].completed <= w[1].completed
                && w[0].seq < w[1].seq),
            "trace() yields entries oldest first"
        );
    }

    #[test]
    fn tracing_disabled_by_default() {
        let platform = Platform::spr();
        let mut memory = Memory::new();
        let mut memsys = MemSystem::new(platform.clone());
        let mut dev = DsaDevice::new(0, DeviceConfig::single_engine(), &platform);
        let src = memory.alloc(64, Location::local_dram());
        memsys.page_table_mut().map_range(src.addr(), 64, PageSize::Base4K);
        let d = Descriptor::memmove(src.addr(), src.addr(), 64);
        dev.submit(&mut memory, &mut memsys, WqId(0), &d, SimTime::ZERO).unwrap();
        assert_eq!(dev.trace().count(), 0);
    }
}

#[cfg(test)]
mod error_path_tests {
    use super::*;
    use dsa_mem::buffer::PageSize;

    /// Every opcode that requires op-specific params must reject a
    /// descriptor carrying the wrong variant with InvalidDescriptor —
    /// never panic, never silently succeed.
    #[test]
    fn wrong_params_yield_invalid_descriptor() {
        let platform = Platform::spr();
        let mut memory = Memory::new();
        let mut memsys = MemSystem::new(platform.clone());
        let mut dev = DsaDevice::new(0, DeviceConfig::single_engine(), &platform);
        let buf = memory.alloc(4096, Location::local_dram());
        memsys.page_table_mut().map_range(buf.addr(), 4096, PageSize::Base4K);

        let cases = [
            Opcode::Fill,           // needs Pattern
            Opcode::ComparePattern, // needs Pattern
            Opcode::Dualcast,       // needs Dest2
            Opcode::CreateDelta,    // needs Delta
            Opcode::ApplyDelta,     // needs Delta
            Opcode::DifInsert,      // needs Dif
            Opcode::DifCheck,       // needs Dif
            Opcode::DifStrip,       // needs Dif
            Opcode::DifUpdate,      // needs Dif
        ];
        for opcode in cases {
            let d = Descriptor {
                opcode,
                flags: Flags::REQUEST_COMPLETION,
                src: buf.addr(),
                dst: buf.addr(),
                xfer_size: 512,
                completion_addr: 0,
                params: OpParams::None, // deliberately wrong for all cases
            };
            let exec = dev.submit(&mut memory, &mut memsys, WqId(0), &d, SimTime::ZERO).unwrap();
            assert_eq!(
                exec.record.status,
                Status::InvalidDescriptor,
                "{opcode:?} with missing params must be invalid"
            );
        }
        assert_eq!(dev.telemetry().errors, cases.len() as u64);
    }

    /// Zero-length operations complete successfully without touching data.
    #[test]
    fn zero_length_ops_are_benign() {
        let platform = Platform::spr();
        let mut memory = Memory::new();
        let mut memsys = MemSystem::new(platform.clone());
        let mut dev = DsaDevice::new(0, DeviceConfig::single_engine(), &platform);
        let buf = memory.alloc(64, Location::local_dram());
        memsys.page_table_mut().map_range(buf.addr(), 64, PageSize::Base4K);
        memory.read_mut(buf.addr(), 64).unwrap().fill(0x3C);

        let d = Descriptor::memmove(buf.addr(), buf.addr(), 0);
        let exec = dev.submit(&mut memory, &mut memsys, WqId(0), &d, SimTime::ZERO).unwrap();
        assert_eq!(exec.record.status, Status::Success);
        assert_eq!(exec.record.bytes_completed, 0);
        assert!(memory.read(buf.addr(), 64).unwrap().iter().all(|&b| b == 0x3C));
    }

    /// Oversized transfers are rejected at submission, before any work.
    #[test]
    fn oversized_transfer_rejected_at_submit() {
        let platform = Platform::spr();
        let mut memory = Memory::new();
        let mut memsys = MemSystem::new(platform.clone());
        let mut dev = DsaDevice::new(0, DeviceConfig::single_engine(), &platform);
        let mut d = Descriptor::memmove(0x1000, 0x2000, 64);
        d.xfer_size = u32::MAX; // 4 GiB - 1 > 2 GiB cap
        let err = dev.submit(&mut memory, &mut memsys, WqId(0), &d, SimTime::ZERO).unwrap_err();
        assert!(matches!(err, SubmitError::TooLarge { .. }));
        assert_eq!(dev.telemetry().descriptors, 0, "nothing was processed");
    }
}
