//! # dsa-device — the accelerator models
//!
//! Transaction-level, functionally-exact models of:
//!
//! * [`device::DsaDevice`] — one Intel DSA instance: portals, dedicated and
//!   shared work queues, flexible groups with processing engines, batch
//!   processing, the ATC/IOMMU translation path, page-fault semantics,
//!   cache-control write steering, and PCM-style telemetry.
//! * [`cbdma::CbdmaDevice`] — the Ice Lake CBDMA predecessor (memory-ring
//!   descriptors, pinning requirement, no batching), the paper's §4.2
//!   comparison baseline.
//!
//! Descriptors and completion records ([`descriptor`]) follow the DSA
//! architecture specification's shapes; configurations ([`config`]) are
//! validated with the IDXD driver's rules; all timing constants live in
//! [`timing`] with their calibration anchors documented.
//!
//! ```rust
//! use dsa_device::config::DeviceConfig;
//! use dsa_device::descriptor::Descriptor;
//! use dsa_device::device::{DsaDevice, WqId};
//! use dsa_mem::{buffer::Location, memory::Memory, memsys::MemSystem, topology::Platform};
//! use dsa_sim::SimTime;
//!
//! let platform = Platform::spr();
//! let mut memory = Memory::new();
//! let mut memsys = MemSystem::new(platform.clone());
//! let mut dev = DsaDevice::new(0, DeviceConfig::single_engine(), &platform);
//!
//! let src = memory.alloc(4096, Location::local_dram());
//! let dst = memory.alloc(4096, Location::local_dram());
//! memory.write(src.addr(), &[0xAB; 4096]).unwrap();
//! memsys.page_table_mut().map_range(src.addr(), 4096, dsa_mem::buffer::PageSize::Base4K);
//! memsys.page_table_mut().map_range(dst.addr(), 4096, dsa_mem::buffer::PageSize::Base4K);
//!
//! let desc = Descriptor::memmove(src.addr(), dst.addr(), 4096);
//! let exec = dev.submit(&mut memory, &mut memsys, WqId(0), &desc, SimTime::ZERO).unwrap();
//! assert!(exec.record.status.is_ok());
//! assert_eq!(memory.read(dst.addr(), 4096).unwrap()[0], 0xAB);
//! ```

pub mod cbdma;
pub mod config;
pub mod descriptor;
pub mod device;
pub mod timing;

pub use config::{DeviceCaps, DeviceConfig, GroupConfig, WqConfig, WqMode};
pub use descriptor::{BatchDescriptor, CompletionRecord, Descriptor, Flags, Opcode, Status};
pub use device::{DsaDevice, Execution, SubmitError, WqId};
pub use timing::{CbdmaTiming, DsaTiming};
