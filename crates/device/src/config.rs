//! Device configuration: groups, work queues, engines.
//!
//! DSA's "flexible group configuration" (paper §4.3) lets users partition
//! WQs and processing engines into groups, size and prioritize WQs, and
//! allocate read buffers. This module is the structural model plus the
//! validation rules `libaccel-config`/the IDXD driver enforce; the
//! ergonomic builder lives in `dsa-core::config`.

use std::fmt;

/// Hardware capability limits of one DSA instance (paper Table 2: 8 WQs,
/// 4 engines; the spec's 128 total WQ entries).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeviceCaps {
    /// Number of processing engines.
    pub engines: u32,
    /// Number of work queues.
    pub wqs: u32,
    /// Total WQ entry storage shared by all configured WQs.
    pub wq_total_entries: u32,
    /// Maximum descriptors per batch.
    pub max_batch: u32,
    /// Maximum transfer size per descriptor in bytes.
    pub max_transfer: u32,
    /// Maximum number of groups.
    pub groups: u32,
}

impl DeviceCaps {
    /// Sapphire Rapids DSA 1.0 capabilities.
    pub fn dsa1() -> DeviceCaps {
        DeviceCaps {
            engines: 4,
            wqs: 8,
            wq_total_entries: 128,
            max_batch: 1024,
            max_transfer: 1 << 31,
            groups: 4,
        }
    }
}

/// Work-queue dispatch mode (paper §3.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WqMode {
    /// Dedicated: a single client submits with `MOVDIR64B`; software owns
    /// occupancy tracking.
    Dedicated,
    /// Shared: many clients submit with `ENQCMD`, which reports Retry when
    /// the queue is full.
    Shared,
}

/// Configuration of one work queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WqConfig {
    /// Queue depth in descriptors (its slice of the 128-entry storage).
    pub size: u32,
    /// Dedicated or shared.
    pub mode: WqMode,
    /// Arbitration priority, 1 (lowest) ..= 15 (highest).
    pub priority: u8,
    /// Index of the group this WQ belongs to.
    pub group: usize,
}

impl WqConfig {
    /// A dedicated WQ of `size` entries in `group` with mid priority.
    pub fn dedicated(size: u32, group: usize) -> WqConfig {
        WqConfig { size, mode: WqMode::Dedicated, priority: 8, group }
    }

    /// A shared WQ of `size` entries in `group` with mid priority.
    pub fn shared(size: u32, group: usize) -> WqConfig {
        WqConfig { size, mode: WqMode::Shared, priority: 8, group }
    }
}

/// Configuration of one group: how many engines it owns and (optionally) a
/// cap on read buffers per engine (§3.4/F3 QoS control).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GroupConfig {
    /// Engines assigned to this group.
    pub engines: u32,
    /// Read-buffer entries each engine may use (`None` = hardware default).
    pub read_buffers_per_engine: Option<u32>,
}

impl GroupConfig {
    /// A group with `engines` engines and default read buffers.
    pub fn with_engines(engines: u32) -> GroupConfig {
        GroupConfig { engines, read_buffers_per_engine: None }
    }
}

/// Full device configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceConfig {
    /// Groups, indexed by the `group` field of each WQ.
    pub groups: Vec<GroupConfig>,
    /// Work queues.
    pub wqs: Vec<WqConfig>,
}

impl DeviceConfig {
    /// The paper's default evaluation setup: one group with one dedicated
    /// 32-entry WQ and one engine ("a single PE for DSA", §4.1; QD 32).
    pub fn single_engine() -> DeviceConfig {
        DeviceConfig {
            groups: vec![GroupConfig::with_engines(1)],
            wqs: vec![WqConfig::dedicated(32, 0)],
        }
    }

    /// All four engines in one group behind one dedicated 128-entry WQ.
    pub fn full_device() -> DeviceConfig {
        DeviceConfig {
            groups: vec![GroupConfig::with_engines(4)],
            wqs: vec![WqConfig::dedicated(128, 0)],
        }
    }

    /// Validates against hardware capabilities, mirroring the IDXD driver's
    /// rejection rules.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self, caps: &DeviceCaps) -> Result<(), ConfigError> {
        if self.groups.is_empty() {
            return Err(ConfigError::NoGroups);
        }
        if self.groups.len() > caps.groups as usize {
            return Err(ConfigError::TooManyGroups {
                configured: self.groups.len(),
                max: caps.groups,
            });
        }
        if self.wqs.is_empty() {
            return Err(ConfigError::NoWqs);
        }
        if self.wqs.len() > caps.wqs as usize {
            return Err(ConfigError::TooManyWqs { configured: self.wqs.len(), max: caps.wqs });
        }
        let engines: u32 = self.groups.iter().map(|g| g.engines).sum();
        if engines > caps.engines {
            return Err(ConfigError::TooManyEngines { configured: engines, max: caps.engines });
        }
        let entries: u32 = self.wqs.iter().map(|w| w.size).sum();
        if entries > caps.wq_total_entries {
            return Err(ConfigError::WqStorageExceeded {
                configured: entries,
                max: caps.wq_total_entries,
            });
        }
        for (i, wq) in self.wqs.iter().enumerate() {
            if wq.size == 0 {
                return Err(ConfigError::EmptyWq { wq: i });
            }
            if wq.priority == 0 || wq.priority > 15 {
                return Err(ConfigError::BadPriority { wq: i, priority: wq.priority });
            }
            let Some(group) = self.groups.get(wq.group) else {
                return Err(ConfigError::UnknownGroup { wq: i, group: wq.group });
            };
            if group.engines == 0 {
                return Err(ConfigError::GroupWithoutEngines { wq: i, group: wq.group });
            }
        }
        Ok(())
    }
}

/// Configuration rejection reasons.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// No groups configured.
    NoGroups,
    /// More groups than the device supports.
    TooManyGroups {
        /// Configured count.
        configured: usize,
        /// Hardware maximum.
        max: u32,
    },
    /// No work queues configured.
    NoWqs,
    /// More WQs than the device supports.
    TooManyWqs {
        /// Configured count.
        configured: usize,
        /// Hardware maximum.
        max: u32,
    },
    /// Groups claim more engines than exist.
    TooManyEngines {
        /// Configured count.
        configured: u32,
        /// Hardware maximum.
        max: u32,
    },
    /// WQ sizes exceed the shared entry storage.
    WqStorageExceeded {
        /// Configured total entries.
        configured: u32,
        /// Hardware maximum.
        max: u32,
    },
    /// A WQ has zero entries.
    EmptyWq {
        /// Offending WQ index.
        wq: usize,
    },
    /// A WQ priority is outside 1..=15.
    BadPriority {
        /// Offending WQ index.
        wq: usize,
        /// Offending priority.
        priority: u8,
    },
    /// A WQ references a group that does not exist.
    UnknownGroup {
        /// Offending WQ index.
        wq: usize,
        /// Referenced group.
        group: usize,
    },
    /// A WQ's group has no engines to process its work.
    GroupWithoutEngines {
        /// Offending WQ index.
        wq: usize,
        /// Referenced group.
        group: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NoGroups => write!(f, "no groups configured"),
            ConfigError::TooManyGroups { configured, max } => {
                write!(f, "{configured} groups configured, device supports {max}")
            }
            ConfigError::NoWqs => write!(f, "no work queues configured"),
            ConfigError::TooManyWqs { configured, max } => {
                write!(f, "{configured} WQs configured, device supports {max}")
            }
            ConfigError::TooManyEngines { configured, max } => {
                write!(f, "groups claim {configured} engines, device has {max}")
            }
            ConfigError::WqStorageExceeded { configured, max } => {
                write!(f, "WQ sizes total {configured} entries, device has {max}")
            }
            ConfigError::EmptyWq { wq } => write!(f, "WQ {wq} has zero entries"),
            ConfigError::BadPriority { wq, priority } => {
                write!(f, "WQ {wq} priority {priority} outside 1..=15")
            }
            ConfigError::UnknownGroup { wq, group } => {
                write!(f, "WQ {wq} references unknown group {group}")
            }
            ConfigError::GroupWithoutEngines { wq, group } => {
                write!(f, "WQ {wq} is in group {group} which has no engines")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        let caps = DeviceCaps::dsa1();
        DeviceConfig::single_engine().validate(&caps).unwrap();
        DeviceConfig::full_device().validate(&caps).unwrap();
    }

    #[test]
    fn wq_storage_budget_enforced() {
        let caps = DeviceCaps::dsa1();
        let cfg = DeviceConfig {
            groups: vec![GroupConfig::with_engines(1)],
            wqs: vec![WqConfig::dedicated(100, 0), WqConfig::dedicated(29, 0)],
        };
        assert_eq!(
            cfg.validate(&caps),
            Err(ConfigError::WqStorageExceeded { configured: 129, max: 128 })
        );
    }

    #[test]
    fn engine_budget_enforced() {
        let caps = DeviceCaps::dsa1();
        let cfg = DeviceConfig {
            groups: vec![GroupConfig::with_engines(3), GroupConfig::with_engines(2)],
            wqs: vec![WqConfig::dedicated(8, 0)],
        };
        assert!(matches!(cfg.validate(&caps), Err(ConfigError::TooManyEngines { .. })));
    }

    #[test]
    fn group_references_checked() {
        let caps = DeviceCaps::dsa1();
        let cfg = DeviceConfig {
            groups: vec![GroupConfig::with_engines(1)],
            wqs: vec![WqConfig::dedicated(8, 3)],
        };
        assert!(matches!(cfg.validate(&caps), Err(ConfigError::UnknownGroup { .. })));
        let cfg = DeviceConfig {
            groups: vec![GroupConfig::with_engines(1), GroupConfig::with_engines(0)],
            wqs: vec![WqConfig::dedicated(8, 1)],
        };
        assert!(matches!(cfg.validate(&caps), Err(ConfigError::GroupWithoutEngines { .. })));
    }

    #[test]
    fn degenerate_configs_rejected() {
        let caps = DeviceCaps::dsa1();
        assert_eq!(
            DeviceConfig { groups: vec![], wqs: vec![] }.validate(&caps),
            Err(ConfigError::NoGroups)
        );
        let cfg = DeviceConfig { groups: vec![GroupConfig::with_engines(1)], wqs: vec![] };
        assert_eq!(cfg.validate(&caps), Err(ConfigError::NoWqs));
        let cfg = DeviceConfig {
            groups: vec![GroupConfig::with_engines(1)],
            wqs: vec![WqConfig::dedicated(0, 0)],
        };
        assert_eq!(cfg.validate(&caps), Err(ConfigError::EmptyWq { wq: 0 }));
        let cfg = DeviceConfig {
            groups: vec![GroupConfig::with_engines(1)],
            wqs: vec![WqConfig { priority: 0, ..WqConfig::dedicated(8, 0) }],
        };
        assert!(matches!(cfg.validate(&caps), Err(ConfigError::BadPriority { .. })));
    }

    #[test]
    fn eight_wqs_allowed_nine_rejected() {
        let caps = DeviceCaps::dsa1();
        let wq = |_: usize| WqConfig::dedicated(8, 0);
        let cfg = DeviceConfig {
            groups: vec![GroupConfig::with_engines(4)],
            wqs: (0..8).map(wq).collect(),
        };
        cfg.validate(&caps).unwrap();
        let cfg = DeviceConfig {
            groups: vec![GroupConfig::with_engines(4)],
            wqs: (0..9).map(wq).collect(),
        };
        assert!(matches!(cfg.validate(&caps), Err(ConfigError::TooManyWqs { .. })));
    }

    #[test]
    fn error_display_nonempty() {
        let e = ConfigError::WqStorageExceeded { configured: 200, max: 128 };
        assert!(e.to_string().contains("200"));
    }
}
