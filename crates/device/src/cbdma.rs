//! The CBDMA baseline: the Ice Lake generation's Crystal Beach DMA engine.
//!
//! The paper's §2 and §4.2 compare DSA against CBDMA with matched resources
//! (one CBDMA channel vs. one DSA engine), reporting DSA at ≈ 2.1× average
//! throughput. The model captures CBDMA's structural differences:
//!
//! * descriptors live in a memory ring — the device *fetches* them (no
//!   low-latency portal write), and the doorbell write is costlier than
//!   `MOVDIR64B`;
//! * no shared virtual memory: buffers must be **pinned** before use, a
//!   restriction the paper calls out as a key adoption barrier (§2);
//! * a small operation set (copy/fill), no batching, no cache-control.

use crate::timing::CbdmaTiming;
use dsa_mem::buffer::Location;
use dsa_mem::memory::Memory;
use dsa_mem::memsys::{AgentId, MemSystem, WritePolicy};
use dsa_sim::time::{transfer_time_mgbps, SimDuration, SimTime};
use dsa_sim::timeline::{BwResource, Timeline};
use dsa_telemetry::{Hub, JobTrace, Labels, Track};

/// Errors from CBDMA usage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CbdmaError {
    /// The channel index is out of range.
    UnknownChannel {
        /// Offending index.
        channel: usize,
    },
    /// The source or destination range was not pinned.
    NotPinned {
        /// Offending address.
        addr: u64,
    },
    /// The address range is invalid.
    BadRange {
        /// Offending address.
        addr: u64,
    },
}

impl std::fmt::Display for CbdmaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CbdmaError::UnknownChannel { channel } => write!(f, "unknown channel {channel}"),
            CbdmaError::NotPinned { addr } => {
                write!(f, "range at {addr:#x} must be pinned before CBDMA use")
            }
            CbdmaError::BadRange { addr } => write!(f, "invalid range at {addr:#x}"),
        }
    }
}

impl std::error::Error for CbdmaError {}

/// A completed CBDMA transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CbdmaExecution {
    /// When the doorbell write finished (core-side cost).
    pub submitted: SimTime,
    /// When the status write became visible to the polling core.
    pub completed: SimTime,
}

/// One CBDMA device (16 channels on ICX, paper Table 2).
pub struct CbdmaDevice {
    id: u16,
    timing: CbdmaTiming,
    channels: Vec<Timeline>,
    fabric: BwResource,
    pinned: Vec<(u64, u64)>,
    hub: Option<Hub>,
}

impl CbdmaDevice {
    /// Builds a CBDMA with `channels` channels.
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0`.
    pub fn new(id: u16, channels: usize, timing: CbdmaTiming) -> CbdmaDevice {
        assert!(channels > 0, "CBDMA needs at least one channel");
        CbdmaDevice {
            id,
            timing,
            channels: (0..channels).map(|_| Timeline::new()).collect(),
            fabric: BwResource::new(timing.fabric_mgbps),
            pinned: Vec::new(),
            hub: None,
        }
    }

    /// Attaches a telemetry hub; completed copies emit pipeline spans
    /// (doorbell → ring fetch → read → write → completion) into it.
    pub fn attach_hub(&mut self, hub: Hub) {
        self.hub = Some(hub);
    }

    /// Device id.
    pub fn id(&self) -> u16 {
        self.id
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels.len()
    }

    /// Device timing parameters.
    pub fn timing(&self) -> &CbdmaTiming {
        &self.timing
    }

    /// The earliest instant `channel` could begin a new transfer.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn channel_next_free(&self, channel: usize) -> SimTime {
        self.channels[channel].next_free()
    }

    /// Registers `[addr, addr+len)` as pinned (the `get_user_pages`-style
    /// setup CBDMA required).
    pub fn pin(&mut self, addr: u64, len: u64) {
        self.pinned.push((addr, len));
    }

    fn is_pinned(&self, addr: u64, len: u64) -> bool {
        self.pinned.iter().any(|&(base, plen)| addr >= base && addr + len <= base + plen)
    }

    /// Submits a copy of `len` bytes on `channel` at `now`.
    ///
    /// # Errors
    ///
    /// Fails if the channel is unknown, either range is unpinned, or the
    /// addresses are invalid.
    #[allow(clippy::too_many_arguments)]
    pub fn submit_copy(
        &mut self,
        memory: &mut Memory,
        memsys: &mut MemSystem,
        channel: usize,
        src: u64,
        dst: u64,
        len: u64,
        now: SimTime,
    ) -> Result<CbdmaExecution, CbdmaError> {
        if channel >= self.channels.len() {
            return Err(CbdmaError::UnknownChannel { channel });
        }
        for (addr, what) in [(src, "src"), (dst, "dst")] {
            let _ = what;
            if !self.is_pinned(addr, len) {
                return Err(CbdmaError::NotPinned { addr });
            }
        }
        memory.copy(src, dst, len).map_err(|_| CbdmaError::BadRange { addr: src })?;

        let agent = AgentId::dsa(self.id);
        let submitted = now + self.timing.doorbell;
        // The device fetches the ring descriptor, then streams.
        let fetch_done = submitted + self.timing.ring_fetch;
        let busy = self.timing.chan_fixed + transfer_time_mgbps(len, self.timing.chan_mgbps);
        let chan = self.channels[channel].reserve(fetch_done, busy);
        let src_loc = memory.location_of(src).unwrap_or(Location::local_dram());
        let dst_loc = memory.location_of(dst).unwrap_or(Location::local_dram());
        let fr = self.fabric.transfer(chan.start, len);
        let mr = memsys.read(agent, src_loc, chan.start, len);
        let arrived = fr.end.max(mr.end);
        let fw = self.fabric.transfer(arrived, len);
        let mw = memsys.write(agent, dst_loc, arrived, len, WritePolicy::Memory);
        let data_done = fw.end.max(mw.interval.end).max(chan.end);
        let completed = data_done + self.timing.completion + memsys.platform().llc_latency;
        if let Some(hub) = &self.hub {
            let track = Track::CbdmaChan { device: self.id, chan: channel as u16 };
            hub.span(track, "doorbell", now, submitted);
            hub.span(track, "ring_fetch", submitted, fetch_done);
            hub.span(track, "wait", fetch_done, chan.start);
            hub.span(track, "read", chan.start, arrived);
            hub.span(track, "write", arrived, data_done);
            hub.span(track, "complete", data_done, completed);
            let labels = Labels::wq(self.id, channel as u16);
            hub.counter_add("cbdma_copies", labels, 1);
            hub.counter_add("cbdma_bytes", labels, len);
            hub.observe("cbdma_latency", labels, completed - submitted);
            // Critical path: doorbell + ring fetch count as software prep,
            // and there is no translation segment — CBDMA requires pinned
            // pages, so PeService is structurally zero (the §2 contrast
            // with DSA's SVM).
            hub.record_job_trace(JobTrace::from_boundaries(
                hub.next_trace_id(),
                self.id,
                channel as u16,
                "cbdma_copy",
                u32::try_from(len).unwrap_or(u32::MAX),
                [now, fetch_done, chan.start, chan.start, data_done, completed],
            ));
        }
        Ok(CbdmaExecution { submitted, completed })
    }

    /// End-to-end latency of a single synchronous copy (descriptor build +
    /// doorbell through completion polling), without pinning checks — the
    /// steady-state cost used in sweeps.
    pub fn sync_copy_latency(
        &mut self,
        memsys: &mut MemSystem,
        channel: usize,
        len: u64,
        now: SimTime,
    ) -> SimDuration {
        let submitted = now + self.timing.doorbell;
        let fetch_done = submitted + self.timing.ring_fetch;
        let busy = self.timing.chan_fixed + transfer_time_mgbps(len, self.timing.chan_mgbps);
        let idx = channel.min(self.channels.len() - 1);
        let chan = self.channels[idx].reserve(fetch_done, busy);
        let agent = AgentId::dsa(self.id);
        let fr = self.fabric.transfer(chan.start, len);
        let mr = memsys.read(agent, Location::local_dram(), chan.start, len);
        let arrived = fr.end.max(mr.end);
        let fw = self.fabric.transfer(arrived, len);
        let mw = memsys.write(agent, Location::local_dram(), arrived, len, WritePolicy::Memory);
        let done = fw.end.max(mw.interval.end).max(chan.end);
        (done + self.timing.completion + memsys.platform().llc_latency).duration_since(now)
    }
}

impl std::fmt::Debug for CbdmaDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CbdmaDevice")
            .field("id", &self.id)
            .field("channels", &self.channels.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsa_mem::topology::Platform;

    fn setup() -> (Memory, MemSystem, CbdmaDevice) {
        (
            Memory::new(),
            MemSystem::new(Platform::icx()),
            CbdmaDevice::new(0, 16, CbdmaTiming::icx()),
        )
    }

    #[test]
    fn unpinned_rejected() {
        let (mut mem, mut sys, mut dev) = setup();
        let a = mem.alloc(4096, Location::local_dram());
        let b = mem.alloc(4096, Location::local_dram());
        let err = dev
            .submit_copy(&mut mem, &mut sys, 0, a.addr(), b.addr(), 4096, SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, CbdmaError::NotPinned { .. }));
    }

    #[test]
    fn pinned_copy_works_functionally() {
        let (mut mem, mut sys, mut dev) = setup();
        let a = mem.alloc(4096, Location::local_dram());
        let b = mem.alloc(4096, Location::local_dram());
        mem.read_mut(a.addr(), 4096).unwrap().fill(0x7E);
        dev.pin(a.addr(), 4096);
        dev.pin(b.addr(), 4096);
        let exec = dev
            .submit_copy(&mut mem, &mut sys, 0, a.addr(), b.addr(), 4096, SimTime::ZERO)
            .unwrap();
        assert!(exec.completed > exec.submitted);
        assert!(mem.read(b.addr(), 4096).unwrap().iter().all(|&x| x == 0x7E));
    }

    #[test]
    fn unknown_channel_rejected() {
        let (mut mem, mut sys, mut dev) = setup();
        let a = mem.alloc(64, Location::local_dram());
        dev.pin(a.addr(), 64);
        let err = dev
            .submit_copy(&mut mem, &mut sys, 99, a.addr(), a.addr(), 64, SimTime::ZERO)
            .unwrap_err();
        assert_eq!(err, CbdmaError::UnknownChannel { channel: 99 });
    }

    #[test]
    fn latency_grows_with_size() {
        let (_, mut sys, mut dev) = setup();
        let small = dev.sync_copy_latency(&mut sys, 0, 256, SimTime::ZERO);
        let mut sys2 = MemSystem::new(Platform::icx());
        let mut dev2 = CbdmaDevice::new(0, 16, CbdmaTiming::icx());
        let large = dev2.sync_copy_latency(&mut sys2, 0, 1 << 20, SimTime::ZERO);
        assert!(large > small);
        // Small transfers are dominated by the fixed offload cost.
        assert!(small.as_ns_f64() > 500.0, "offload overhead should dominate: {small}");
    }
}
