//! Work descriptors and completion records.
//!
//! Software drives DSA by submitting 64-byte descriptors to a portal
//! (paper §3.2). A descriptor names the operation, its flags (completion
//! record request, cache control, block-on-fault, fencing), the source/
//! destination/completion addresses, and the transfer size; a *batch*
//! descriptor points at an array of work descriptors instead. On
//! completion the device writes a 32-byte completion record.
//!
//! [`Descriptor::to_bytes`] produces the 64-byte wire layout so tests can
//! pin the ABI; the simulation passes the structured form around.

use dsa_ops::dif::DifConfig;
use dsa_ops::OpKind;

/// DSA operation codes (architecture specification, Table 1 of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Opcode {
    /// No operation.
    Nop = 0x00,
    /// Batch: process an array of descriptors.
    Batch = 0x01,
    /// Drain: wait for preceding descriptors.
    Drain = 0x02,
    /// Memory move (copy).
    Memmove = 0x03,
    /// Memory fill with a pattern.
    Fill = 0x04,
    /// Memory compare.
    Compare = 0x05,
    /// Compare against a pattern.
    ComparePattern = 0x06,
    /// Create delta record.
    CreateDelta = 0x07,
    /// Apply delta record.
    ApplyDelta = 0x08,
    /// Dualcast: copy to two destinations.
    Dualcast = 0x09,
    /// CRC generation.
    CrcGen = 0x10,
    /// Copy with CRC generation.
    CopyCrc = 0x11,
    /// DIF check.
    DifCheck = 0x12,
    /// DIF insert.
    DifInsert = 0x13,
    /// DIF strip.
    DifStrip = 0x14,
    /// DIF update.
    DifUpdate = 0x15,
    /// Cache flush.
    CacheFlush = 0x20,
}

impl Opcode {
    /// The functional operation kind this opcode maps to.
    pub fn op_kind(self) -> OpKind {
        match self {
            Opcode::Nop | Opcode::Batch | Opcode::Drain => OpKind::Nop,
            Opcode::Memmove => OpKind::Memcpy,
            Opcode::Fill => OpKind::Fill,
            Opcode::Compare => OpKind::Compare,
            Opcode::ComparePattern => OpKind::ComparePattern,
            Opcode::CreateDelta => OpKind::DeltaCreate,
            Opcode::ApplyDelta => OpKind::DeltaApply,
            Opcode::Dualcast => OpKind::Dualcast,
            Opcode::CrcGen => OpKind::Crc32,
            Opcode::CopyCrc => OpKind::CopyCrc,
            Opcode::DifCheck => OpKind::DifCheck,
            Opcode::DifInsert => OpKind::DifInsert,
            Opcode::DifStrip => OpKind::DifStrip,
            Opcode::DifUpdate => OpKind::DifUpdate,
            Opcode::CacheFlush => OpKind::CacheFlush,
        }
    }

    /// Short lowercase mnemonic (trace-event span names).
    pub fn mnemonic(self) -> &'static str {
        match self {
            Opcode::Nop => "nop",
            Opcode::Batch => "batch",
            Opcode::Drain => "drain",
            Opcode::Memmove => "memmove",
            Opcode::Fill => "fill",
            Opcode::Compare => "compare",
            Opcode::ComparePattern => "compare-pattern",
            Opcode::CreateDelta => "create-delta",
            Opcode::ApplyDelta => "apply-delta",
            Opcode::Dualcast => "dualcast",
            Opcode::CrcGen => "crc-gen",
            Opcode::CopyCrc => "copy-crc",
            Opcode::DifCheck => "dif-check",
            Opcode::DifInsert => "dif-insert",
            Opcode::DifStrip => "dif-strip",
            Opcode::DifUpdate => "dif-update",
            Opcode::CacheFlush => "cache-flush",
        }
    }
}

/// Descriptor flag bits (subset of the specification's flags).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Flags(u32);

impl Flags {
    /// Fence: wait for prior descriptors in the batch before starting.
    pub const FENCE: Flags = Flags(1 << 0);
    /// Block on fault instead of partially completing.
    pub const BLOCK_ON_FAULT: Flags = Flags(1 << 1);
    /// Request a completion record write.
    pub const REQUEST_COMPLETION: Flags = Flags(1 << 2);
    /// Cache control: steer destination writes into the LLC (DDIO-style).
    pub const CACHE_CONTROL: Flags = Flags(1 << 3);
    /// Request a completion interrupt (vs. polling).
    pub const COMPLETION_INTERRUPT: Flags = Flags(1 << 4);

    /// No flags set.
    pub fn empty() -> Flags {
        Flags(0)
    }

    /// True if every bit of `other` is set in `self`.
    pub fn contains(self, other: Flags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Union of two flag sets.
    pub fn union(self, other: Flags) -> Flags {
        Flags(self.0 | other.0)
    }

    /// Raw bits.
    pub fn bits(self) -> u32 {
        self.0
    }
}

impl std::ops::BitOr for Flags {
    type Output = Flags;
    fn bitor(self, rhs: Flags) -> Flags {
        self.union(rhs)
    }
}

/// Operation-specific descriptor fields.
#[derive(Clone, Debug, PartialEq)]
pub enum OpParams {
    /// No extra parameters (nop/drain/memmove/compare/crc-check/flush).
    None,
    /// 8-byte fill or compare pattern.
    Pattern(u64),
    /// Second destination for dualcast.
    Dest2(u64),
    /// CRC seed for chained checksums.
    CrcSeed(u32),
    /// Delta record destination and its maximum size.
    Delta {
        /// Where the record is written (create) or read (apply).
        record_addr: u64,
        /// Maximum record size in bytes (create only).
        max_size: u32,
    },
    /// DIF block/tag configuration.
    Dif(DifConfig),
}

/// A 64-byte work descriptor.
#[derive(Clone, Debug, PartialEq)]
pub struct Descriptor {
    /// Operation code.
    pub opcode: Opcode,
    /// Flag bits.
    pub flags: Flags,
    /// Source address (0 when unused).
    pub src: u64,
    /// Destination address (0 when unused).
    pub dst: u64,
    /// Nominal transfer size in bytes.
    pub xfer_size: u32,
    /// Completion record address (0 = none).
    pub completion_addr: u64,
    /// Operation-specific fields.
    pub params: OpParams,
}

impl Descriptor {
    /// A memory-move descriptor with a completion record requested.
    pub fn memmove(src: u64, dst: u64, len: u32) -> Descriptor {
        Descriptor {
            opcode: Opcode::Memmove,
            flags: Flags::REQUEST_COMPLETION,
            src,
            dst,
            xfer_size: len,
            completion_addr: 0,
            params: OpParams::None,
        }
    }

    /// A fill descriptor.
    pub fn fill(dst: u64, len: u32, pattern: u64) -> Descriptor {
        Descriptor {
            opcode: Opcode::Fill,
            flags: Flags::REQUEST_COMPLETION,
            src: 0,
            dst,
            xfer_size: len,
            completion_addr: 0,
            params: OpParams::Pattern(pattern),
        }
    }

    /// A compare descriptor (`src` vs `dst` per the spec's operand naming).
    pub fn compare(a: u64, b: u64, len: u32) -> Descriptor {
        Descriptor {
            opcode: Opcode::Compare,
            flags: Flags::REQUEST_COMPLETION,
            src: a,
            dst: b,
            xfer_size: len,
            completion_addr: 0,
            params: OpParams::None,
        }
    }

    /// A CRC-generation descriptor.
    pub fn crc_gen(src: u64, len: u32) -> Descriptor {
        Descriptor {
            opcode: Opcode::CrcGen,
            flags: Flags::REQUEST_COMPLETION,
            src,
            dst: 0,
            xfer_size: len,
            completion_addr: 0,
            params: OpParams::CrcSeed(0),
        }
    }

    /// Enables cache-control (destination steered to LLC).
    pub fn with_cache_control(mut self) -> Descriptor {
        self.flags = self.flags | Flags::CACHE_CONTROL;
        self
    }

    /// Sets the completion-record address.
    pub fn with_completion_addr(mut self, addr: u64) -> Descriptor {
        self.completion_addr = addr;
        self
    }

    /// Sets block-on-fault behaviour.
    pub fn with_block_on_fault(mut self) -> Descriptor {
        self.flags = self.flags | Flags::BLOCK_ON_FAULT;
        self
    }

    /// Serializes to the 64-byte portal format.
    pub fn to_bytes(&self) -> [u8; 64] {
        let mut b = [0u8; 64];
        // Offset 0: PASID/flags dword (flags in the high bits here).
        b[0..4].copy_from_slice(&self.flags.bits().to_le_bytes());
        b[4] = self.opcode as u8;
        b[8..16].copy_from_slice(&self.completion_addr.to_le_bytes());
        b[16..24].copy_from_slice(&self.src.to_le_bytes());
        b[24..32].copy_from_slice(&self.dst.to_le_bytes());
        b[32..36].copy_from_slice(&self.xfer_size.to_le_bytes());
        match &self.params {
            OpParams::None => {}
            OpParams::Pattern(p) => b[40..48].copy_from_slice(&p.to_le_bytes()),
            OpParams::Dest2(d) => b[40..48].copy_from_slice(&d.to_le_bytes()),
            OpParams::CrcSeed(s) => b[40..44].copy_from_slice(&s.to_le_bytes()),
            OpParams::Delta { record_addr, max_size } => {
                b[40..48].copy_from_slice(&record_addr.to_le_bytes());
                b[48..52].copy_from_slice(&max_size.to_le_bytes());
            }
            OpParams::Dif(cfg) => {
                b[40] = match cfg.block {
                    dsa_ops::dif::DifBlockSize::B512 => 0,
                    dsa_ops::dif::DifBlockSize::B520 => 1,
                    dsa_ops::dif::DifBlockSize::B4096 => 2,
                    dsa_ops::dif::DifBlockSize::B4104 => 3,
                };
                b[42..44].copy_from_slice(&cfg.app_tag.to_le_bytes());
                b[44..48].copy_from_slice(&cfg.starting_ref_tag.to_le_bytes());
            }
        }
        b
    }

    /// Parses a descriptor from the 64-byte portal format produced by
    /// [`to_bytes`](Self::to_bytes).
    ///
    /// # Errors
    ///
    /// Returns `None` for an unknown opcode. Operation-specific fields are
    /// recovered according to the opcode's layout.
    pub fn from_bytes(b: &[u8; 64]) -> Option<Descriptor> {
        let flags = Flags(u32::from_le_bytes(b[0..4].try_into().expect("4 bytes")));
        let opcode = match b[4] {
            0x00 => Opcode::Nop,
            0x01 => Opcode::Batch,
            0x02 => Opcode::Drain,
            0x03 => Opcode::Memmove,
            0x04 => Opcode::Fill,
            0x05 => Opcode::Compare,
            0x06 => Opcode::ComparePattern,
            0x07 => Opcode::CreateDelta,
            0x08 => Opcode::ApplyDelta,
            0x09 => Opcode::Dualcast,
            0x10 => Opcode::CrcGen,
            0x11 => Opcode::CopyCrc,
            0x12 => Opcode::DifCheck,
            0x13 => Opcode::DifInsert,
            0x14 => Opcode::DifStrip,
            0x15 => Opcode::DifUpdate,
            0x20 => Opcode::CacheFlush,
            _ => return None,
        };
        let completion_addr = u64::from_le_bytes(b[8..16].try_into().expect("8 bytes"));
        let src = u64::from_le_bytes(b[16..24].try_into().expect("8 bytes"));
        let dst = u64::from_le_bytes(b[24..32].try_into().expect("8 bytes"));
        let xfer_size = u32::from_le_bytes(b[32..36].try_into().expect("4 bytes"));
        let word40 = u64::from_le_bytes(b[40..48].try_into().expect("8 bytes"));
        let params = match opcode {
            Opcode::Fill | Opcode::ComparePattern => OpParams::Pattern(word40),
            Opcode::Dualcast => OpParams::Dest2(word40),
            Opcode::CrcGen | Opcode::CopyCrc => {
                OpParams::CrcSeed(u32::from_le_bytes(b[40..44].try_into().expect("4 bytes")))
            }
            Opcode::CreateDelta | Opcode::ApplyDelta => OpParams::Delta {
                record_addr: word40,
                max_size: u32::from_le_bytes(b[48..52].try_into().expect("4 bytes")),
            },
            Opcode::DifCheck | Opcode::DifInsert | Opcode::DifStrip | Opcode::DifUpdate => {
                let block = match b[40] {
                    0 => dsa_ops::dif::DifBlockSize::B512,
                    1 => dsa_ops::dif::DifBlockSize::B520,
                    2 => dsa_ops::dif::DifBlockSize::B4096,
                    3 => dsa_ops::dif::DifBlockSize::B4104,
                    _ => return None,
                };
                OpParams::Dif(DifConfig {
                    block,
                    app_tag: u16::from_le_bytes(b[42..44].try_into().expect("2 bytes")),
                    starting_ref_tag: u32::from_le_bytes(b[44..48].try_into().expect("4 bytes")),
                })
            }
            _ => OpParams::None,
        };
        Some(Descriptor { opcode, flags, src, dst, xfer_size, completion_addr, params })
    }

    /// The number of bytes the device will read processing this descriptor.
    pub fn bytes_read(&self) -> u64 {
        (self.xfer_size as f64 * self.opcode.op_kind().read_amplification()) as u64
    }

    /// The number of bytes the device will write processing this descriptor.
    pub fn bytes_written(&self) -> u64 {
        (self.xfer_size as f64 * self.opcode.op_kind().write_amplification()) as u64
    }
}

/// Completion status codes (subset of the specification).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Status {
    /// Operation completed successfully.
    Success,
    /// Stopped at a page fault; `bytes_completed` is valid.
    PageFault {
        /// Faulting virtual address.
        addr: u64,
    },
    /// Memory compare found a difference (not an error; result holds the
    /// offset).
    CompareMismatch,
    /// Delta record exceeded its maximum size.
    DeltaOverflow,
    /// DIF verification failed.
    DifError,
    /// Descriptor was malformed (bad addresses, zero size, …).
    InvalidDescriptor,
}

impl Status {
    /// True for states the paper's software treats as success
    /// (compare mismatch is an answer, not a failure).
    pub fn is_ok(self) -> bool {
        matches!(self, Status::Success | Status::CompareMismatch)
    }
}

/// The 32-byte completion record the device writes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CompletionRecord {
    /// Outcome.
    pub status: Status,
    /// Bytes processed before stopping (== `xfer_size` on success).
    pub bytes_completed: u32,
    /// Operation result: CRC value, first-difference offset, or delta
    /// record size.
    pub result: u64,
}

impl CompletionRecord {
    /// A success record for a fully processed descriptor.
    pub fn success(bytes: u32) -> CompletionRecord {
        CompletionRecord { status: Status::Success, bytes_completed: bytes, result: 0 }
    }

    /// Serializes to the 32-byte record the device writes to the
    /// completion address. Byte 0 is the status (non-zero once complete —
    /// what `UMONITOR` arms on); the layout mirrors the specification's
    /// status / bytes-completed / fault-address / result fields.
    pub fn to_bytes(&self) -> [u8; 32] {
        let mut b = [0u8; 32];
        let (code, fault_addr) = match self.status {
            Status::Success => (0x01u8, 0u64),
            Status::PageFault { addr } => (0x03, addr),
            Status::CompareMismatch => (0x01, 0), // success w/ result set
            Status::DeltaOverflow => (0x04, 0),
            Status::DifError => (0x05, 0),
            Status::InvalidDescriptor => (0x10, 0),
        };
        b[0] = code;
        // Result-qualifier bit for compare results.
        if self.status == Status::CompareMismatch {
            b[1] = 1;
        }
        b[4..8].copy_from_slice(&self.bytes_completed.to_le_bytes());
        b[8..16].copy_from_slice(&fault_addr.to_le_bytes());
        b[16..24].copy_from_slice(&self.result.to_le_bytes());
        b
    }

    /// Parses a record previously serialized with
    /// [`to_bytes`](Self::to_bytes).
    ///
    /// # Errors
    ///
    /// Returns `None` for an unknown status code (byte 0).
    pub fn from_bytes(b: &[u8; 32]) -> Option<CompletionRecord> {
        let bytes_completed = u32::from_le_bytes(b[4..8].try_into().expect("4 bytes"));
        let fault_addr = u64::from_le_bytes(b[8..16].try_into().expect("8 bytes"));
        let result = u64::from_le_bytes(b[16..24].try_into().expect("8 bytes"));
        let status = match (b[0], b[1]) {
            (0x01, 0) => Status::Success,
            (0x01, 1) => Status::CompareMismatch,
            (0x03, _) => Status::PageFault { addr: fault_addr },
            (0x04, _) => Status::DeltaOverflow,
            (0x05, _) => Status::DifError,
            (0x10, _) => Status::InvalidDescriptor,
            _ => return None,
        };
        Some(CompletionRecord { status, bytes_completed, result })
    }
}

/// A batch descriptor: points at `count` work descriptors in memory.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchDescriptor {
    /// Address of the descriptor array.
    pub desc_list_addr: u64,
    /// Number of descriptors in the batch (must be >= 2 per the spec).
    pub count: u32,
    /// Completion record address for the *batch* record.
    pub completion_addr: u64,
    /// Flags applied to the batch submission itself.
    pub flags: Flags,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_layout_is_stable() {
        let d = Descriptor::memmove(0x1000, 0x2000, 4096).with_completion_addr(0x3000);
        let b = d.to_bytes();
        assert_eq!(b[4], 0x03); // Memmove opcode
        assert_eq!(u64::from_le_bytes(b[16..24].try_into().unwrap()), 0x1000);
        assert_eq!(u64::from_le_bytes(b[24..32].try_into().unwrap()), 0x2000);
        assert_eq!(u32::from_le_bytes(b[32..36].try_into().unwrap()), 4096);
        assert_eq!(u64::from_le_bytes(b[8..16].try_into().unwrap()), 0x3000);
        assert_eq!(b.len(), 64);
    }

    #[test]
    fn flags_compose() {
        let f = Flags::REQUEST_COMPLETION | Flags::CACHE_CONTROL;
        assert!(f.contains(Flags::CACHE_CONTROL));
        assert!(!f.contains(Flags::BLOCK_ON_FAULT));
        let d = Descriptor::memmove(0, 0, 1).with_cache_control().with_block_on_fault();
        assert!(d.flags.contains(Flags::CACHE_CONTROL));
        assert!(d.flags.contains(Flags::BLOCK_ON_FAULT));
        assert!(d.flags.contains(Flags::REQUEST_COMPLETION));
    }

    #[test]
    fn pattern_serialized() {
        let d = Descriptor::fill(0x100, 64, 0xDEAD_BEEF_CAFE_F00D);
        let b = d.to_bytes();
        assert_eq!(u64::from_le_bytes(b[40..48].try_into().unwrap()), 0xDEAD_BEEF_CAFE_F00D);
    }

    #[test]
    fn amplifications_via_opcode() {
        assert_eq!(Descriptor::memmove(0, 0, 100).bytes_read(), 100);
        assert_eq!(Descriptor::memmove(0, 0, 100).bytes_written(), 100);
        assert_eq!(Descriptor::fill(0, 100, 0).bytes_read(), 0);
        assert_eq!(Descriptor::compare(0, 0, 100).bytes_read(), 200);
        assert_eq!(Descriptor::crc_gen(0, 100).bytes_written(), 0);
    }

    #[test]
    fn opcode_kind_mapping_total() {
        for op in [
            Opcode::Nop,
            Opcode::Batch,
            Opcode::Drain,
            Opcode::Memmove,
            Opcode::Fill,
            Opcode::Compare,
            Opcode::ComparePattern,
            Opcode::CreateDelta,
            Opcode::ApplyDelta,
            Opcode::Dualcast,
            Opcode::CrcGen,
            Opcode::CopyCrc,
            Opcode::DifCheck,
            Opcode::DifInsert,
            Opcode::DifStrip,
            Opcode::DifUpdate,
            Opcode::CacheFlush,
        ] {
            let _ = op.op_kind(); // must not panic
        }
    }

    #[test]
    fn status_ok_semantics() {
        assert!(Status::Success.is_ok());
        assert!(Status::CompareMismatch.is_ok());
        assert!(!Status::PageFault { addr: 0 }.is_ok());
        assert!(!Status::InvalidDescriptor.is_ok());
    }

    #[test]
    fn completion_record_success() {
        let r = CompletionRecord::success(4096);
        assert_eq!(r.bytes_completed, 4096);
        assert_eq!(r.status, Status::Success);
    }
}

#[cfg(test)]
mod record_wire_tests {
    use super::*;

    #[test]
    fn completion_record_roundtrips_all_statuses() {
        for status in [
            Status::Success,
            Status::PageFault { addr: 0xDEAD_B000 },
            Status::CompareMismatch,
            Status::DeltaOverflow,
            Status::DifError,
            Status::InvalidDescriptor,
        ] {
            let r = CompletionRecord { status, bytes_completed: 1234, result: 0xABCD };
            let parsed = CompletionRecord::from_bytes(&r.to_bytes()).unwrap();
            assert_eq!(parsed.status, status);
            assert_eq!(parsed.bytes_completed, 1234);
            assert_eq!(parsed.result, 0xABCD);
        }
    }

    #[test]
    fn record_status_byte_is_nonzero_when_complete() {
        // UMONITOR arms on the status byte flipping from 0.
        for status in [Status::Success, Status::InvalidDescriptor, Status::DifError] {
            let r = CompletionRecord { status, bytes_completed: 0, result: 0 };
            assert_ne!(r.to_bytes()[0], 0);
        }
    }

    #[test]
    fn unknown_status_code_rejected() {
        let mut b = [0u8; 32];
        b[0] = 0x7F;
        assert!(CompletionRecord::from_bytes(&b).is_none());
    }
}
