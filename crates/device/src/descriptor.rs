//! Work descriptors and completion records.
//!
//! Software drives DSA by submitting 64-byte descriptors to a portal
//! (paper §3.2). A descriptor names the operation, its flags (completion
//! record request, cache control, block-on-fault, fencing), the source/
//! destination/completion addresses, and the transfer size; a *batch*
//! descriptor points at an array of work descriptors instead. On
//! completion the device writes a 32-byte completion record.
//!
//! [`Descriptor::to_bytes`] produces the 64-byte wire layout so tests can
//! pin the ABI; the simulation passes the structured form around.

use crate::config::DeviceCaps;
use dsa_ops::dif::DifConfig;
use dsa_ops::OpKind;
use dsa_sim::time::scale_bytes;

/// Fixed-offset little-endian field reads for the wire formats. Callers
/// index within the fixed 64- and 32-byte buffers, so the slices are
/// always in range.
fn le_u16(b: &[u8], off: usize) -> u16 {
    u16::from_le_bytes([b[off], b[off + 1]])
}

fn le_u32(b: &[u8], off: usize) -> u32 {
    u32::from_le_bytes([b[off], b[off + 1], b[off + 2], b[off + 3]])
}

fn le_u64(b: &[u8], off: usize) -> u64 {
    let mut v = [0u8; 8];
    v.copy_from_slice(&b[off..off + 8]);
    u64::from_le_bytes(v)
}

/// DSA operation codes (architecture specification, Table 1 of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Opcode {
    /// No operation.
    Nop = 0x00,
    /// Batch: process an array of descriptors.
    Batch = 0x01,
    /// Drain: wait for preceding descriptors.
    Drain = 0x02,
    /// Memory move (copy).
    Memmove = 0x03,
    /// Memory fill with a pattern.
    Fill = 0x04,
    /// Memory compare.
    Compare = 0x05,
    /// Compare against a pattern.
    ComparePattern = 0x06,
    /// Create delta record.
    CreateDelta = 0x07,
    /// Apply delta record.
    ApplyDelta = 0x08,
    /// Dualcast: copy to two destinations.
    Dualcast = 0x09,
    /// CRC generation.
    CrcGen = 0x10,
    /// Copy with CRC generation.
    CopyCrc = 0x11,
    /// DIF check.
    DifCheck = 0x12,
    /// DIF insert.
    DifInsert = 0x13,
    /// DIF strip.
    DifStrip = 0x14,
    /// DIF update.
    DifUpdate = 0x15,
    /// Cache flush.
    CacheFlush = 0x20,
}

impl Opcode {
    /// The functional operation kind this opcode maps to.
    pub fn op_kind(self) -> OpKind {
        match self {
            Opcode::Nop | Opcode::Batch | Opcode::Drain => OpKind::Nop,
            Opcode::Memmove => OpKind::Memcpy,
            Opcode::Fill => OpKind::Fill,
            Opcode::Compare => OpKind::Compare,
            Opcode::ComparePattern => OpKind::ComparePattern,
            Opcode::CreateDelta => OpKind::DeltaCreate,
            Opcode::ApplyDelta => OpKind::DeltaApply,
            Opcode::Dualcast => OpKind::Dualcast,
            Opcode::CrcGen => OpKind::Crc32,
            Opcode::CopyCrc => OpKind::CopyCrc,
            Opcode::DifCheck => OpKind::DifCheck,
            Opcode::DifInsert => OpKind::DifInsert,
            Opcode::DifStrip => OpKind::DifStrip,
            Opcode::DifUpdate => OpKind::DifUpdate,
            Opcode::CacheFlush => OpKind::CacheFlush,
        }
    }

    /// Short lowercase mnemonic (trace-event span names).
    pub fn mnemonic(self) -> &'static str {
        match self {
            Opcode::Nop => "nop",
            Opcode::Batch => "batch",
            Opcode::Drain => "drain",
            Opcode::Memmove => "memmove",
            Opcode::Fill => "fill",
            Opcode::Compare => "compare",
            Opcode::ComparePattern => "compare-pattern",
            Opcode::CreateDelta => "create-delta",
            Opcode::ApplyDelta => "apply-delta",
            Opcode::Dualcast => "dualcast",
            Opcode::CrcGen => "crc-gen",
            Opcode::CopyCrc => "copy-crc",
            Opcode::DifCheck => "dif-check",
            Opcode::DifInsert => "dif-insert",
            Opcode::DifStrip => "dif-strip",
            Opcode::DifUpdate => "dif-update",
            Opcode::CacheFlush => "cache-flush",
        }
    }
}

/// Descriptor flag bits (subset of the specification's flags).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Flags(u32);

impl Flags {
    /// Fence: wait for prior descriptors in the batch before starting.
    pub const FENCE: Flags = Flags(1 << 0);
    /// Block on fault instead of partially completing.
    pub const BLOCK_ON_FAULT: Flags = Flags(1 << 1);
    /// Request a completion record write.
    pub const REQUEST_COMPLETION: Flags = Flags(1 << 2);
    /// Cache control: steer destination writes into the LLC (DDIO-style).
    pub const CACHE_CONTROL: Flags = Flags(1 << 3);
    /// Request a completion interrupt (vs. polling).
    pub const COMPLETION_INTERRUPT: Flags = Flags(1 << 4);

    /// No flags set.
    pub fn empty() -> Flags {
        Flags(0)
    }

    /// True if every bit of `other` is set in `self`.
    pub fn contains(self, other: Flags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Union of two flag sets.
    pub fn union(self, other: Flags) -> Flags {
        Flags(self.0 | other.0)
    }

    /// Raw bits.
    pub fn bits(self) -> u32 {
        self.0
    }

    /// Rebuilds a flag set from raw bits (inverse of [`bits`](Self::bits)).
    /// Total: unknown bits are carried verbatim and rejected later by
    /// [`Descriptor::validate`], matching how the portal treats the wire
    /// dword.
    pub fn from_bits(bits: u32) -> Flags {
        Flags(bits)
    }
}

impl std::ops::BitOr for Flags {
    type Output = Flags;
    fn bitor(self, rhs: Flags) -> Flags {
        self.union(rhs)
    }
}

/// Operation-specific descriptor fields.
#[derive(Clone, Debug, PartialEq)]
pub enum OpParams {
    /// No extra parameters (nop/drain/memmove/compare/crc-check/flush).
    None,
    /// 8-byte fill or compare pattern.
    Pattern(u64),
    /// Second destination for dualcast.
    Dest2(u64),
    /// CRC seed for chained checksums.
    CrcSeed(u32),
    /// Delta record destination and its maximum size.
    Delta {
        /// Where the record is written (create) or read (apply).
        record_addr: u64,
        /// Maximum record size in bytes (create only).
        max_size: u32,
    },
    /// DIF block/tag configuration.
    Dif(DifConfig),
}

/// Why a descriptor failed [`Descriptor::validate`] — the DSA-spec
/// conformance layer every submit path runs before accepting work.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DescriptorError {
    /// A plain descriptor carried the Batch opcode; batches go through
    /// `BatchDescriptor` / `submit_batch`.
    BatchOpcode,
    /// Transfer size exceeds the device's maximum.
    TooLarge {
        /// Requested size in bytes.
        size: u64,
        /// Device maximum in bytes.
        max: u32,
    },
    /// Completion-record address not 32-byte aligned (the record is a
    /// 32-byte aligned structure per the spec).
    MisalignedCompletion {
        /// Offending address.
        addr: u64,
    },
    /// Completion interrupt requested without a completion record.
    InterruptWithoutCompletion,
    /// Fence is only meaningful for descriptors inside a batch.
    FenceOutsideBatch,
    /// A flag that is reserved for this opcode was set.
    FlagIncompatible {
        /// The opcode in question.
        opcode: Opcode,
        /// The offending flag bits.
        flags: u32,
    },
    /// `params` does not carry the operand layout this opcode requires.
    ParamMismatch {
        /// The opcode in question.
        opcode: Opcode,
    },
    /// Dualcast destination ranges overlap.
    DualcastOverlap,
    /// Delta operations require an 8-byte-multiple transfer size.
    DeltaUnaligned {
        /// Offending size.
        size: u32,
    },
    /// DIF transfer size is not a whole number of blocks/tuples.
    DifSizeMismatch {
        /// Offending size.
        size: u32,
        /// Required multiple in bytes.
        multiple: u32,
    },
    /// Batch must reference at least two descriptors (spec requirement).
    BatchTooSmall {
        /// Requested count.
        count: u32,
    },
    /// Batch exceeds the device's maximum batch size.
    BatchTooLarge {
        /// Requested count.
        count: u32,
        /// Device maximum.
        max: u32,
    },
}

impl std::fmt::Display for DescriptorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DescriptorError::BatchOpcode => {
                write!(f, "batch opcode in a plain descriptor; use BatchDescriptor")
            }
            DescriptorError::TooLarge { size, max } => {
                write!(f, "transfer of {size} bytes exceeds device max of {max}")
            }
            DescriptorError::MisalignedCompletion { addr } => {
                write!(f, "completion record address {addr:#x} not 32-byte aligned")
            }
            DescriptorError::InterruptWithoutCompletion => {
                write!(f, "completion interrupt requested without a completion record")
            }
            DescriptorError::FenceOutsideBatch => {
                write!(f, "fence flag on a directly submitted descriptor")
            }
            DescriptorError::FlagIncompatible { opcode, flags } => {
                write!(f, "flag bits {flags:#x} are reserved for opcode {opcode:?}")
            }
            DescriptorError::ParamMismatch { opcode } => {
                write!(f, "operation-specific params do not match opcode {opcode:?}")
            }
            DescriptorError::DualcastOverlap => {
                write!(f, "dualcast destination ranges overlap")
            }
            DescriptorError::DeltaUnaligned { size } => {
                write!(f, "delta transfer size {size} is not a multiple of 8")
            }
            DescriptorError::DifSizeMismatch { size, multiple } => {
                write!(f, "DIF transfer size {size} is not a multiple of {multiple}")
            }
            DescriptorError::BatchTooSmall { count } => {
                write!(f, "batch of {count} descriptors; spec requires at least 2")
            }
            DescriptorError::BatchTooLarge { count, max } => {
                write!(f, "batch of {count} descriptors exceeds device max of {max}")
            }
        }
    }
}

impl DescriptorError {
    /// True for errors real hardware reports *through the completion
    /// record* (`Status::InvalidDescriptor`) rather than by refusing the
    /// portal write. The device model lets these reach the engine, which
    /// writes the error record; software-side submit paths reject them
    /// eagerly, before paying for a portal write.
    pub fn reported_in_completion(&self) -> bool {
        matches!(
            self,
            DescriptorError::ParamMismatch { .. }
                | DescriptorError::DualcastOverlap
                | DescriptorError::DeltaUnaligned { .. }
                | DescriptorError::DifSizeMismatch { .. }
        )
    }
}

impl std::error::Error for DescriptorError {}

/// A 64-byte work descriptor.
#[derive(Clone, Debug, PartialEq)]
pub struct Descriptor {
    /// Operation code.
    pub opcode: Opcode,
    /// Flag bits.
    pub flags: Flags,
    /// Source address (0 when unused).
    pub src: u64,
    /// Destination address (0 when unused).
    pub dst: u64,
    /// Nominal transfer size in bytes.
    pub xfer_size: u32,
    /// Completion record address (0 = none).
    pub completion_addr: u64,
    /// Operation-specific fields.
    pub params: OpParams,
}

impl Descriptor {
    /// The base shape every constructor builds on: completion requested,
    /// operation-specific fields filled in by the caller. Routes through
    /// [`rebuild`](Self::rebuild) so a pooled slot overwritten in place is
    /// field-for-field identical to a freshly constructed descriptor.
    fn base(opcode: Opcode, src: u64, dst: u64, len: u32, params: OpParams) -> Descriptor {
        let mut d = Descriptor {
            opcode: Opcode::Nop,
            flags: Flags::empty(),
            src: 0,
            dst: 0,
            xfer_size: 0,
            completion_addr: 0,
            params: OpParams::None,
        };
        d.rebuild(opcode, src, dst, len, params);
        d
    }

    /// Overwrites every field in place — the zero-allocation counterpart of
    /// the constructors, used by op-program interpreters to refill one
    /// pooled descriptor slot per step. Flags reset to the constructor
    /// default (completion requested) and the completion address clears, so
    /// no state leaks from the slot's previous occupant.
    pub fn rebuild(&mut self, opcode: Opcode, src: u64, dst: u64, len: u32, params: OpParams) {
        self.opcode = opcode;
        self.flags = Flags::REQUEST_COMPLETION;
        self.src = src;
        self.dst = dst;
        self.xfer_size = len;
        self.completion_addr = 0;
        self.params = params;
    }

    /// In-place counterpart of [`with_cache_control`](Self::with_cache_control)
    /// for pooled slots: sets (never clears) the cache-control flag when
    /// `on` is true.
    pub fn set_cache_control(&mut self, on: bool) {
        if on {
            self.flags = self.flags | Flags::CACHE_CONTROL;
        }
    }

    /// In-place counterpart of [`with_block_on_fault`](Self::with_block_on_fault).
    pub fn set_block_on_fault(&mut self, on: bool) {
        if on {
            self.flags = self.flags | Flags::BLOCK_ON_FAULT;
        }
    }

    /// A no-op descriptor (offload-overhead probes).
    pub fn nop() -> Descriptor {
        Descriptor::base(Opcode::Nop, 0, 0, 0, OpParams::None)
    }

    /// A drain descriptor: an ordering barrier against prior submissions.
    pub fn drain() -> Descriptor {
        Descriptor::base(Opcode::Drain, 0, 0, 0, OpParams::None)
    }

    /// A memory-move descriptor with a completion record requested.
    pub fn memmove(src: u64, dst: u64, len: u32) -> Descriptor {
        Descriptor::base(Opcode::Memmove, src, dst, len, OpParams::None)
    }

    /// A fill descriptor.
    pub fn fill(dst: u64, len: u32, pattern: u64) -> Descriptor {
        Descriptor::base(Opcode::Fill, 0, dst, len, OpParams::Pattern(pattern))
    }

    /// A compare descriptor (`src` vs `dst` per the spec's operand naming).
    pub fn compare(a: u64, b: u64, len: u32) -> Descriptor {
        Descriptor::base(Opcode::Compare, a, b, len, OpParams::None)
    }

    /// A CRC-generation descriptor.
    pub fn crc_gen(src: u64, len: u32) -> Descriptor {
        Descriptor::base(Opcode::CrcGen, src, 0, len, OpParams::CrcSeed(0))
    }

    /// A compare-against-pattern descriptor.
    pub fn compare_pattern(src: u64, len: u32, pattern: u64) -> Descriptor {
        Descriptor::base(Opcode::ComparePattern, src, 0, len, OpParams::Pattern(pattern))
    }

    /// A copy-with-CRC descriptor.
    pub fn copy_crc(src: u64, dst: u64, len: u32) -> Descriptor {
        Descriptor::base(Opcode::CopyCrc, src, dst, len, OpParams::CrcSeed(0))
    }

    /// A dualcast descriptor copying `src` to both `dst1` and `dst2`.
    pub fn dualcast(src: u64, dst1: u64, dst2: u64, len: u32) -> Descriptor {
        Descriptor::base(Opcode::Dualcast, src, dst1, len, OpParams::Dest2(dst2))
    }

    /// A create-delta descriptor comparing `original` vs `modified`,
    /// writing a record of at most `max_size` bytes at `record_addr`.
    pub fn delta_create(
        original: u64,
        modified: u64,
        len: u32,
        record_addr: u64,
        max_size: u32,
    ) -> Descriptor {
        Descriptor::base(
            Opcode::CreateDelta,
            original,
            modified,
            len,
            OpParams::Delta { record_addr, max_size },
        )
    }

    /// An apply-delta descriptor replaying the `record_len`-byte record at
    /// `record_addr` onto `target`.
    pub fn delta_apply(record_addr: u64, record_len: u32, target: u64, len: u32) -> Descriptor {
        Descriptor::base(
            Opcode::ApplyDelta,
            0,
            target,
            len,
            OpParams::Delta { record_addr, max_size: record_len },
        )
    }

    /// A DIF-insert descriptor (raw blocks in `src` → protected in `dst`).
    pub fn dif_insert(src: u64, dst: u64, len: u32, cfg: DifConfig) -> Descriptor {
        Descriptor::base(Opcode::DifInsert, src, dst, len, OpParams::Dif(cfg))
    }

    /// A DIF-check descriptor over protected blocks in `src`.
    pub fn dif_check(src: u64, len: u32, cfg: DifConfig) -> Descriptor {
        Descriptor::base(Opcode::DifCheck, src, 0, len, OpParams::Dif(cfg))
    }

    /// A DIF-strip descriptor (verify `src`, raw data to `dst`).
    pub fn dif_strip(src: u64, dst: u64, len: u32, cfg: DifConfig) -> Descriptor {
        Descriptor::base(Opcode::DifStrip, src, dst, len, OpParams::Dif(cfg))
    }

    /// A DIF-update descriptor (verify `src`, rewrite tuples to `dst`).
    pub fn dif_update(src: u64, dst: u64, len: u32, cfg: DifConfig) -> Descriptor {
        Descriptor::base(Opcode::DifUpdate, src, dst, len, OpParams::Dif(cfg))
    }

    /// A cache-flush descriptor over `len` bytes at `dst`.
    pub fn cache_flush(dst: u64, len: u32) -> Descriptor {
        Descriptor::base(Opcode::CacheFlush, 0, dst, len, OpParams::None)
    }

    /// Enables cache-control (destination steered to LLC).
    pub fn with_cache_control(mut self) -> Descriptor {
        self.flags = self.flags | Flags::CACHE_CONTROL;
        self
    }

    /// Sets the completion-record address.
    pub fn with_completion_addr(mut self, addr: u64) -> Descriptor {
        self.completion_addr = addr;
        self
    }

    /// Sets block-on-fault behaviour.
    pub fn with_block_on_fault(mut self) -> Descriptor {
        self.flags = self.flags | Flags::BLOCK_ON_FAULT;
        self
    }

    /// Spec-conformance check for a *directly submitted* descriptor:
    /// opcode/flags compatibility, transfer-size bounds, operand-layout
    /// match, and completion-record alignment. Every submit path runs this
    /// before accepting work.
    ///
    /// # Errors
    ///
    /// Returns the first [`DescriptorError`] found, in the order the
    /// hardware would report them (structure before size before operands).
    pub fn validate(&self, caps: &DeviceCaps) -> Result<(), DescriptorError> {
        self.validate_inner(caps, false)
    }

    /// Spec-conformance check for a descriptor *inside a batch*, where the
    /// fence flag is legal (it orders sub-descriptors against each other).
    ///
    /// # Errors
    ///
    /// See [`validate`](Self::validate).
    pub fn validate_in_batch(&self, caps: &DeviceCaps) -> Result<(), DescriptorError> {
        self.validate_inner(caps, true)
    }

    fn validate_inner(&self, caps: &DeviceCaps, in_batch: bool) -> Result<(), DescriptorError> {
        if self.opcode == Opcode::Batch {
            return Err(DescriptorError::BatchOpcode);
        }
        let data_op = !matches!(self.opcode, Opcode::Nop | Opcode::Drain);
        if self.xfer_size as u64 > caps.max_transfer as u64 {
            return Err(DescriptorError::TooLarge {
                size: self.xfer_size as u64,
                max: caps.max_transfer,
            });
        }
        if self.completion_addr != 0 && !self.completion_addr.is_multiple_of(32) {
            return Err(DescriptorError::MisalignedCompletion { addr: self.completion_addr });
        }
        if self.flags.contains(Flags::COMPLETION_INTERRUPT)
            && !self.flags.contains(Flags::REQUEST_COMPLETION)
        {
            return Err(DescriptorError::InterruptWithoutCompletion);
        }
        if self.flags.contains(Flags::FENCE) && !in_batch {
            return Err(DescriptorError::FenceOutsideBatch);
        }
        if !data_op && self.flags.contains(Flags::CACHE_CONTROL) {
            return Err(DescriptorError::FlagIncompatible {
                opcode: self.opcode,
                flags: Flags::CACHE_CONTROL.bits(),
            });
        }
        let params_ok = match self.opcode {
            Opcode::Nop
            | Opcode::Drain
            | Opcode::Memmove
            | Opcode::Compare
            | Opcode::CacheFlush => matches!(self.params, OpParams::None),
            Opcode::Fill | Opcode::ComparePattern => {
                matches!(self.params, OpParams::Pattern(_))
            }
            Opcode::Dualcast => matches!(self.params, OpParams::Dest2(_)),
            Opcode::CrcGen | Opcode::CopyCrc => matches!(self.params, OpParams::CrcSeed(_)),
            Opcode::CreateDelta | Opcode::ApplyDelta => {
                matches!(self.params, OpParams::Delta { .. })
            }
            Opcode::DifCheck | Opcode::DifInsert | Opcode::DifStrip | Opcode::DifUpdate => {
                matches!(self.params, OpParams::Dif(_))
            }
            Opcode::Batch => false,
        };
        if !params_ok {
            return Err(DescriptorError::ParamMismatch { opcode: self.opcode });
        }
        match (self.opcode, &self.params) {
            (Opcode::Dualcast, OpParams::Dest2(dst2)) => {
                let len = self.xfer_size as u64;
                let overlap =
                    self.dst < dst2.saturating_add(len) && *dst2 < self.dst.saturating_add(len);
                if overlap {
                    return Err(DescriptorError::DualcastOverlap);
                }
            }
            (Opcode::CreateDelta | Opcode::ApplyDelta, _) if !self.xfer_size.is_multiple_of(8) => {
                return Err(DescriptorError::DeltaUnaligned { size: self.xfer_size });
            }
            (op, OpParams::Dif(cfg)) => {
                // Insert reads raw blocks; check/strip/update read protected
                // blocks carrying an 8-byte tuple each.
                let multiple = if op == Opcode::DifInsert {
                    cfg.block.bytes() as u32
                } else {
                    cfg.block.bytes() as u32 + 8
                };
                if !self.xfer_size.is_multiple_of(multiple) {
                    return Err(DescriptorError::DifSizeMismatch {
                        size: self.xfer_size,
                        multiple,
                    });
                }
            }
            _ => {}
        }
        Ok(())
    }

    /// Serializes to the 64-byte portal format.
    pub fn to_bytes(&self) -> [u8; 64] {
        let mut b = [0u8; 64];
        // Offset 0: PASID/flags dword (flags in the high bits here).
        b[0..4].copy_from_slice(&self.flags.bits().to_le_bytes());
        b[4] = self.opcode as u8;
        b[8..16].copy_from_slice(&self.completion_addr.to_le_bytes());
        b[16..24].copy_from_slice(&self.src.to_le_bytes());
        b[24..32].copy_from_slice(&self.dst.to_le_bytes());
        b[32..36].copy_from_slice(&self.xfer_size.to_le_bytes());
        match &self.params {
            OpParams::None => {}
            OpParams::Pattern(p) => b[40..48].copy_from_slice(&p.to_le_bytes()),
            OpParams::Dest2(d) => b[40..48].copy_from_slice(&d.to_le_bytes()),
            OpParams::CrcSeed(s) => b[40..44].copy_from_slice(&s.to_le_bytes()),
            OpParams::Delta { record_addr, max_size } => {
                b[40..48].copy_from_slice(&record_addr.to_le_bytes());
                b[48..52].copy_from_slice(&max_size.to_le_bytes());
            }
            OpParams::Dif(cfg) => {
                b[40] = cfg.block.code();
                b[42..44].copy_from_slice(&cfg.app_tag.to_le_bytes());
                b[44..48].copy_from_slice(&cfg.starting_ref_tag.to_le_bytes());
            }
        }
        b
    }

    /// Parses a descriptor from the 64-byte portal format produced by
    /// [`to_bytes`](Self::to_bytes).
    ///
    /// # Errors
    ///
    /// Returns `None` for an unknown opcode. Operation-specific fields are
    /// recovered according to the opcode's layout.
    pub fn from_bytes(b: &[u8; 64]) -> Option<Descriptor> {
        let flags = Flags(le_u32(b, 0));
        let opcode = match b[4] {
            0x00 => Opcode::Nop,
            0x01 => Opcode::Batch,
            0x02 => Opcode::Drain,
            0x03 => Opcode::Memmove,
            0x04 => Opcode::Fill,
            0x05 => Opcode::Compare,
            0x06 => Opcode::ComparePattern,
            0x07 => Opcode::CreateDelta,
            0x08 => Opcode::ApplyDelta,
            0x09 => Opcode::Dualcast,
            0x10 => Opcode::CrcGen,
            0x11 => Opcode::CopyCrc,
            0x12 => Opcode::DifCheck,
            0x13 => Opcode::DifInsert,
            0x14 => Opcode::DifStrip,
            0x15 => Opcode::DifUpdate,
            0x20 => Opcode::CacheFlush,
            _ => return None,
        };
        let completion_addr = le_u64(b, 8);
        let src = le_u64(b, 16);
        let dst = le_u64(b, 24);
        let xfer_size = le_u32(b, 32);
        let word40 = le_u64(b, 40);
        let params = match opcode {
            Opcode::Fill | Opcode::ComparePattern => OpParams::Pattern(word40),
            Opcode::Dualcast => OpParams::Dest2(word40),
            Opcode::CrcGen | Opcode::CopyCrc => OpParams::CrcSeed(le_u32(b, 40)),
            Opcode::CreateDelta | Opcode::ApplyDelta => {
                OpParams::Delta { record_addr: word40, max_size: le_u32(b, 48) }
            }
            Opcode::DifCheck | Opcode::DifInsert | Opcode::DifStrip | Opcode::DifUpdate => {
                let block = match b[40] {
                    0 => dsa_ops::dif::DifBlockSize::B512,
                    1 => dsa_ops::dif::DifBlockSize::B520,
                    2 => dsa_ops::dif::DifBlockSize::B4096,
                    3 => dsa_ops::dif::DifBlockSize::B4104,
                    _ => return None,
                };
                OpParams::Dif(DifConfig {
                    block,
                    app_tag: le_u16(b, 42),
                    starting_ref_tag: le_u32(b, 44),
                })
            }
            _ => OpParams::None,
        };
        Some(Descriptor { opcode, flags, src, dst, xfer_size, completion_addr, params })
    }

    /// The number of bytes the device will read processing this descriptor.
    pub fn bytes_read(&self) -> u64 {
        scale_bytes(self.xfer_size as u64, self.opcode.op_kind().read_amplification())
    }

    /// The number of bytes the device will write processing this descriptor.
    pub fn bytes_written(&self) -> u64 {
        scale_bytes(self.xfer_size as u64, self.opcode.op_kind().write_amplification())
    }
}

/// Completion status codes (subset of the specification).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Status {
    /// Operation completed successfully.
    Success,
    /// Stopped at a page fault; `bytes_completed` is valid.
    PageFault {
        /// Faulting virtual address.
        addr: u64,
    },
    /// Memory compare found a difference (not an error; result holds the
    /// offset).
    CompareMismatch,
    /// Delta record exceeded its maximum size.
    DeltaOverflow,
    /// DIF verification failed.
    DifError,
    /// Descriptor was malformed (bad addresses, zero size, …).
    InvalidDescriptor,
}

impl Status {
    /// True for states the paper's software treats as success
    /// (compare mismatch is an answer, not a failure).
    pub fn is_ok(self) -> bool {
        matches!(self, Status::Success | Status::CompareMismatch)
    }
}

/// The 32-byte completion record the device writes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CompletionRecord {
    /// Outcome.
    pub status: Status,
    /// Bytes processed before stopping (== `xfer_size` on success).
    pub bytes_completed: u32,
    /// Operation result: CRC value, first-difference offset, or delta
    /// record size.
    pub result: u64,
}

impl CompletionRecord {
    /// A success record for a fully processed descriptor.
    pub fn success(bytes: u32) -> CompletionRecord {
        CompletionRecord { status: Status::Success, bytes_completed: bytes, result: 0 }
    }

    /// Serializes to the 32-byte record the device writes to the
    /// completion address. Byte 0 is the status (non-zero once complete —
    /// what `UMONITOR` arms on); the layout mirrors the specification's
    /// status / bytes-completed / fault-address / result fields.
    pub fn to_bytes(&self) -> [u8; 32] {
        let mut b = [0u8; 32];
        let (code, fault_addr) = match self.status {
            Status::Success => (0x01u8, 0u64),
            Status::PageFault { addr } => (0x03, addr),
            Status::CompareMismatch => (0x01, 0), // success w/ result set
            Status::DeltaOverflow => (0x04, 0),
            Status::DifError => (0x05, 0),
            Status::InvalidDescriptor => (0x10, 0),
        };
        b[0] = code;
        // Result-qualifier bit for compare results.
        if self.status == Status::CompareMismatch {
            b[1] = 1;
        }
        b[4..8].copy_from_slice(&self.bytes_completed.to_le_bytes());
        b[8..16].copy_from_slice(&fault_addr.to_le_bytes());
        b[16..24].copy_from_slice(&self.result.to_le_bytes());
        b
    }

    /// Parses a record previously serialized with
    /// [`to_bytes`](Self::to_bytes).
    ///
    /// # Errors
    ///
    /// Returns `None` for an unknown status code (byte 0).
    pub fn from_bytes(b: &[u8; 32]) -> Option<CompletionRecord> {
        let bytes_completed = le_u32(b, 4);
        let fault_addr = le_u64(b, 8);
        let result = le_u64(b, 16);
        let status = match (b[0], b[1]) {
            (0x01, 0) => Status::Success,
            (0x01, 1) => Status::CompareMismatch,
            (0x03, _) => Status::PageFault { addr: fault_addr },
            (0x04, _) => Status::DeltaOverflow,
            (0x05, _) => Status::DifError,
            (0x10, _) => Status::InvalidDescriptor,
            _ => return None,
        };
        Some(CompletionRecord { status, bytes_completed, result })
    }
}

/// A batch descriptor: points at `count` work descriptors in memory.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchDescriptor {
    /// Address of the descriptor array.
    pub desc_list_addr: u64,
    /// Number of descriptors in the batch (must be >= 2 per the spec).
    pub count: u32,
    /// Completion record address for the *batch* record.
    pub completion_addr: u64,
    /// Flags applied to the batch submission itself.
    pub flags: Flags,
}

impl BatchDescriptor {
    /// A batch descriptor over `count` descriptors at `desc_list_addr`,
    /// with a completion record requested.
    pub fn new(desc_list_addr: u64, count: u32) -> BatchDescriptor {
        BatchDescriptor {
            desc_list_addr,
            count,
            completion_addr: 0,
            flags: Flags::REQUEST_COMPLETION,
        }
    }

    /// Sets the completion-record address for the batch record.
    pub fn with_completion_addr(mut self, addr: u64) -> BatchDescriptor {
        self.completion_addr = addr;
        self
    }

    /// Spec-conformance check for the batch envelope: count within the
    /// spec's `2..=max_batch` window and completion-record alignment.
    ///
    /// # Errors
    ///
    /// Returns the first [`DescriptorError`] found.
    pub fn validate(&self, caps: &DeviceCaps) -> Result<(), DescriptorError> {
        if self.count < 2 {
            return Err(DescriptorError::BatchTooSmall { count: self.count });
        }
        if self.count > caps.max_batch {
            return Err(DescriptorError::BatchTooLarge { count: self.count, max: caps.max_batch });
        }
        if self.completion_addr != 0 && !self.completion_addr.is_multiple_of(32) {
            return Err(DescriptorError::MisalignedCompletion { addr: self.completion_addr });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_layout_is_stable() {
        let d = Descriptor::memmove(0x1000, 0x2000, 4096).with_completion_addr(0x3000);
        let b = d.to_bytes();
        assert_eq!(b[4], 0x03); // Memmove opcode
        assert_eq!(u64::from_le_bytes(b[16..24].try_into().unwrap()), 0x1000);
        assert_eq!(u64::from_le_bytes(b[24..32].try_into().unwrap()), 0x2000);
        assert_eq!(u32::from_le_bytes(b[32..36].try_into().unwrap()), 4096);
        assert_eq!(u64::from_le_bytes(b[8..16].try_into().unwrap()), 0x3000);
        assert_eq!(b.len(), 64);
    }

    #[test]
    fn flags_compose() {
        let f = Flags::REQUEST_COMPLETION | Flags::CACHE_CONTROL;
        assert!(f.contains(Flags::CACHE_CONTROL));
        assert!(!f.contains(Flags::BLOCK_ON_FAULT));
        let d = Descriptor::memmove(0, 0, 1).with_cache_control().with_block_on_fault();
        assert!(d.flags.contains(Flags::CACHE_CONTROL));
        assert!(d.flags.contains(Flags::BLOCK_ON_FAULT));
        assert!(d.flags.contains(Flags::REQUEST_COMPLETION));
    }

    #[test]
    fn pattern_serialized() {
        let d = Descriptor::fill(0x100, 64, 0xDEAD_BEEF_CAFE_F00D);
        let b = d.to_bytes();
        assert_eq!(u64::from_le_bytes(b[40..48].try_into().unwrap()), 0xDEAD_BEEF_CAFE_F00D);
    }

    #[test]
    fn amplifications_via_opcode() {
        assert_eq!(Descriptor::memmove(0, 0, 100).bytes_read(), 100);
        assert_eq!(Descriptor::memmove(0, 0, 100).bytes_written(), 100);
        assert_eq!(Descriptor::fill(0, 100, 0).bytes_read(), 0);
        assert_eq!(Descriptor::compare(0, 0, 100).bytes_read(), 200);
        assert_eq!(Descriptor::crc_gen(0, 100).bytes_written(), 0);
    }

    #[test]
    fn opcode_kind_mapping_total() {
        for op in [
            Opcode::Nop,
            Opcode::Batch,
            Opcode::Drain,
            Opcode::Memmove,
            Opcode::Fill,
            Opcode::Compare,
            Opcode::ComparePattern,
            Opcode::CreateDelta,
            Opcode::ApplyDelta,
            Opcode::Dualcast,
            Opcode::CrcGen,
            Opcode::CopyCrc,
            Opcode::DifCheck,
            Opcode::DifInsert,
            Opcode::DifStrip,
            Opcode::DifUpdate,
            Opcode::CacheFlush,
        ] {
            let _ = op.op_kind(); // must not panic
        }
    }

    #[test]
    fn status_ok_semantics() {
        assert!(Status::Success.is_ok());
        assert!(Status::CompareMismatch.is_ok());
        assert!(!Status::PageFault { addr: 0 }.is_ok());
        assert!(!Status::InvalidDescriptor.is_ok());
    }

    #[test]
    fn completion_record_success() {
        let r = CompletionRecord::success(4096);
        assert_eq!(r.bytes_completed, 4096);
        assert_eq!(r.status, Status::Success);
    }

    #[test]
    fn flags_bits_roundtrip() {
        let f = Flags::REQUEST_COMPLETION | Flags::CACHE_CONTROL | Flags::FENCE;
        assert_eq!(Flags::from_bits(f.bits()), f);
        assert_eq!(Flags::from_bits(0), Flags::empty());
    }

    /// Rebuilding a dirty pooled slot must be indistinguishable from
    /// constructing fresh — same fields, same 64-byte wire image — for
    /// every constructor shape. Digest bit-identity across the compiled
    /// op-program path rides on this.
    #[test]
    fn rebuild_matches_every_constructor() {
        let cfg =
            DifConfig { block: dsa_ops::dif::DifBlockSize::B520, app_tag: 7, starting_ref_tag: 99 };
        let fresh = [
            Descriptor::nop(),
            Descriptor::drain(),
            Descriptor::memmove(0x1000, 0x2000, 4096),
            Descriptor::fill(0x1000, 4096, 0xAB),
            Descriptor::compare(0x1000, 0x2000, 4096),
            Descriptor::compare_pattern(0x1000, 4096, 0xCD),
            Descriptor::crc_gen(0x1000, 4096),
            Descriptor::copy_crc(0x1000, 0x2000, 4096),
            Descriptor::dualcast(0x1000, 0x2000, 0x4000, 4096),
            Descriptor::delta_create(0x1000, 0x2000, 4096, 0x3000, 1024),
            Descriptor::delta_apply(0x3000, 256, 0x2000, 4096),
            Descriptor::dif_insert(0x1000, 0x2000, 520, cfg),
            Descriptor::cache_flush(0x1000, 4096),
        ];
        // The slot starts maximally dirty: every field set, extra flags,
        // a completion address, and rich params.
        for want in fresh {
            let mut slot = Descriptor::dualcast(1, 2, 0x9000, 64)
                .with_cache_control()
                .with_completion_addr(0x20);
            slot.rebuild(want.opcode, want.src, want.dst, want.xfer_size, want.params.clone());
            assert_eq!(slot, want, "{:?}", want.opcode);
            assert_eq!(slot.to_bytes(), want.to_bytes());
        }
    }

    #[test]
    fn set_flags_match_by_value_builders() {
        let by_value = Descriptor::memmove(1, 2, 64).with_cache_control().with_block_on_fault();
        let mut in_place = Descriptor::memmove(1, 2, 64);
        in_place.set_cache_control(true);
        in_place.set_block_on_fault(true);
        assert_eq!(in_place, by_value);
        // `false` is a no-op on the constructor default.
        let mut plain = Descriptor::memmove(1, 2, 64);
        plain.set_cache_control(false);
        plain.set_block_on_fault(false);
        assert_eq!(plain, Descriptor::memmove(1, 2, 64));
    }
}

#[cfg(test)]
mod validate_tests {
    use super::*;

    fn caps() -> DeviceCaps {
        DeviceCaps::dsa1()
    }

    #[test]
    fn constructors_produce_valid_descriptors() {
        let cfg = DifConfig::new(dsa_ops::dif::DifBlockSize::B512);
        let descs = [
            Descriptor::nop(),
            Descriptor::drain(),
            Descriptor::memmove(0x1000, 0x2000, 4096),
            Descriptor::fill(0x1000, 4096, 0xAB),
            Descriptor::compare(0x1000, 0x2000, 4096),
            Descriptor::compare_pattern(0x1000, 4096, 0xAB),
            Descriptor::crc_gen(0x1000, 4096),
            Descriptor::copy_crc(0x1000, 0x2000, 4096),
            Descriptor::dualcast(0x1000, 0x2000, 0x4000, 4096),
            Descriptor::delta_create(0x1000, 0x2000, 4096, 0x3000, 1024),
            Descriptor::delta_apply(0x3000, 256, 0x2000, 4096),
            Descriptor::dif_insert(0x1000, 0x2000, 512, cfg),
            Descriptor::dif_check(0x1000, 520, cfg),
            Descriptor::dif_strip(0x1000, 0x2000, 520, cfg),
            Descriptor::dif_update(0x1000, 0x2000, 520, cfg),
            Descriptor::cache_flush(0x1000, 4096),
        ];
        for d in descs {
            assert_eq!(d.validate(&caps()), Ok(()), "{:?}", d.opcode);
        }
    }

    #[test]
    fn builders_preserve_validity() {
        let d = Descriptor::memmove(0x1000, 0x2000, 64)
            .with_cache_control()
            .with_block_on_fault()
            .with_completion_addr(0x40);
        assert_eq!(d.validate(&caps()), Ok(()));
    }

    #[test]
    fn batch_opcode_rejected_as_plain_descriptor() {
        let mut d = Descriptor::nop();
        d.opcode = Opcode::Batch;
        assert_eq!(d.validate(&caps()), Err(DescriptorError::BatchOpcode));
    }

    #[test]
    fn oversize_transfer_rejected() {
        let mut d = Descriptor::memmove(0, 0x8000_0000, 1);
        d.xfer_size = u32::MAX;
        assert!(matches!(d.validate(&caps()), Err(DescriptorError::TooLarge { .. })));
    }

    #[test]
    fn misaligned_completion_rejected() {
        let d = Descriptor::memmove(0x1000, 0x2000, 64).with_completion_addr(0x41);
        assert_eq!(d.validate(&caps()), Err(DescriptorError::MisalignedCompletion { addr: 0x41 }));
        // Zero means "no record" and 32-byte multiples are fine.
        assert_eq!(
            Descriptor::memmove(0x1000, 0x2000, 64).with_completion_addr(0x60).validate(&caps()),
            Ok(())
        );
    }

    #[test]
    fn interrupt_without_completion_rejected() {
        let mut d = Descriptor::memmove(0x1000, 0x2000, 64);
        d.flags = Flags::COMPLETION_INTERRUPT;
        assert_eq!(d.validate(&caps()), Err(DescriptorError::InterruptWithoutCompletion));
        d.flags = Flags::COMPLETION_INTERRUPT | Flags::REQUEST_COMPLETION;
        assert_eq!(d.validate(&caps()), Ok(()));
    }

    #[test]
    fn fence_legal_only_inside_batches() {
        let mut d = Descriptor::memmove(0x1000, 0x2000, 64);
        d.flags = d.flags | Flags::FENCE;
        assert_eq!(d.validate(&caps()), Err(DescriptorError::FenceOutsideBatch));
        assert_eq!(d.validate_in_batch(&caps()), Ok(()));
    }

    #[test]
    fn cache_control_illegal_on_nop_and_drain() {
        for d in [Descriptor::nop(), Descriptor::drain()] {
            let d = d.with_cache_control();
            assert!(matches!(d.validate(&caps()), Err(DescriptorError::FlagIncompatible { .. })));
        }
    }

    #[test]
    fn param_layout_must_match_opcode() {
        let mut d = Descriptor::fill(0x1000, 64, 0xAB);
        d.params = OpParams::None;
        assert_eq!(
            d.validate(&caps()),
            Err(DescriptorError::ParamMismatch { opcode: Opcode::Fill })
        );
        let mut d = Descriptor::memmove(0x1000, 0x2000, 64);
        d.params = OpParams::Pattern(1);
        assert!(matches!(d.validate(&caps()), Err(DescriptorError::ParamMismatch { .. })));
    }

    #[test]
    fn dualcast_overlapping_destinations_rejected() {
        let d = Descriptor::dualcast(0x1000, 0x2000, 0x2800, 4096);
        assert_eq!(d.validate(&caps()), Err(DescriptorError::DualcastOverlap));
        let ok = Descriptor::dualcast(0x1000, 0x2000, 0x3000, 4096);
        assert_eq!(ok.validate(&caps()), Ok(()));
    }

    #[test]
    fn delta_sizes_must_be_word_multiples() {
        let d = Descriptor::delta_create(0x1000, 0x2000, 100, 0x3000, 64);
        assert_eq!(d.validate(&caps()), Err(DescriptorError::DeltaUnaligned { size: 100 }));
    }

    #[test]
    fn dif_sizes_must_be_block_multiples() {
        let cfg = DifConfig::new(dsa_ops::dif::DifBlockSize::B512);
        // Insert consumes raw 512-byte blocks.
        assert!(Descriptor::dif_insert(0, 0x2000, 1024, cfg).validate(&caps()).is_ok());
        assert!(matches!(
            Descriptor::dif_insert(0, 0x2000, 1000, cfg).validate(&caps()),
            Err(DescriptorError::DifSizeMismatch { multiple: 512, .. })
        ));
        // Check consumes 520-byte protected blocks.
        assert!(Descriptor::dif_check(0, 1040, cfg).validate(&caps()).is_ok());
        assert!(matches!(
            Descriptor::dif_check(0, 1024, cfg).validate(&caps()),
            Err(DescriptorError::DifSizeMismatch { multiple: 520, .. })
        ));
    }

    #[test]
    fn batch_count_window_enforced() {
        assert_eq!(
            BatchDescriptor::new(0x1000, 1).validate(&caps()),
            Err(DescriptorError::BatchTooSmall { count: 1 })
        );
        assert_eq!(BatchDescriptor::new(0x1000, 2).validate(&caps()), Ok(()));
        let max = caps().max_batch;
        assert_eq!(BatchDescriptor::new(0x1000, max).validate(&caps()), Ok(()));
        assert_eq!(
            BatchDescriptor::new(0x1000, max + 1).validate(&caps()),
            Err(DescriptorError::BatchTooLarge { count: max + 1, max })
        );
    }

    #[test]
    fn content_errors_are_completion_reported() {
        assert!(DescriptorError::DualcastOverlap.reported_in_completion());
        assert!(DescriptorError::ParamMismatch { opcode: Opcode::Fill }.reported_in_completion());
        assert!(!DescriptorError::BatchOpcode.reported_in_completion());
        assert!(!DescriptorError::FenceOutsideBatch.reported_in_completion());
    }
}

#[cfg(test)]
mod record_wire_tests {
    use super::*;

    #[test]
    fn completion_record_roundtrips_all_statuses() {
        for status in [
            Status::Success,
            Status::PageFault { addr: 0xDEAD_B000 },
            Status::CompareMismatch,
            Status::DeltaOverflow,
            Status::DifError,
            Status::InvalidDescriptor,
        ] {
            let r = CompletionRecord { status, bytes_completed: 1234, result: 0xABCD };
            let parsed = CompletionRecord::from_bytes(&r.to_bytes()).unwrap();
            assert_eq!(parsed.status, status);
            assert_eq!(parsed.bytes_completed, 1234);
            assert_eq!(parsed.result, 0xABCD);
        }
    }

    #[test]
    fn record_status_byte_is_nonzero_when_complete() {
        // UMONITOR arms on the status byte flipping from 0.
        for status in [Status::Success, Status::InvalidDescriptor, Status::DifError] {
            let r = CompletionRecord { status, bytes_completed: 0, result: 0 };
            assert_ne!(r.to_bytes()[0], 0);
        }
    }

    #[test]
    fn unknown_status_code_rejected() {
        let mut b = [0u8; 32];
        b[0] = 0x7F;
        assert!(CompletionRecord::from_bytes(&b).is_none());
    }
}
