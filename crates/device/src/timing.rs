//! Calibrated device timing parameters.
//!
//! Every constant is a *model parameter* chosen to reproduce the paper's
//! anchors; the doc comment on each records the anchor it serves. The same
//! pipeline skeleton with [`CbdmaTiming`] parameters models the Ice Lake
//! CBDMA baseline (§2, §4.2 "DSA ≈ 2.1× CBDMA").

use dsa_sim::time::SimDuration;

/// DSA (Sapphire Rapids) device timing.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DsaTiming {
    /// Device-side fixed cost of accepting a portal write and enqueueing
    /// into a WQ. Part of the ~µs-scale offload overhead that makes sync
    /// offload lose below ~4 KB (Fig. 2a).
    pub portal_accept: SimDuration,
    /// Arbiter dispatch from WQ head to a free engine.
    pub dispatch: SimDuration,
    /// Engine-fixed per-descriptor processing overhead (decode, completion
    /// queueing). Bounds small-transfer throughput per engine; why more
    /// PEs help small transfers (Fig. 7).
    pub pe_fixed: SimDuration,
    /// Peak streaming rate of a single engine in milli-GB/s. A single PE
    /// can reach the fabric cap for large transfers (Fig. 7).
    pub pe_mgbps: u64,
    /// Device I/O fabric cap in milli-GB/s — the 30 GB/s saturation the
    /// paper reports for one instance (§4.2).
    pub fabric_mgbps: u64,
    /// Completion-record write (always LLC-directed).
    pub completion_write: SimDuration,
    /// Batch-descriptor fixed overhead (batch engine activation).
    pub batch_fixed: SimDuration,
    /// Number of read-buffer entries per engine; with 64-byte entries this
    /// bounds memory-level parallelism and therefore how much latency the
    /// engine can hide (§3.4/F3, Figs. 6a/6b).
    pub read_buffers: u32,
    /// Read-buffer entry size in bytes.
    pub read_buffer_bytes: u32,
    /// Fabric derate applied per unit of DDIO spill fraction — write-
    /// allocate stalls when inbound writes leak to DRAM (Fig. 10 knee).
    pub spill_derate: f64,
    /// Penalty factor on the destination stream when source and destination
    /// share one DRAM controller (Fig. 6a: split placements are slightly
    /// faster).
    pub same_channel_penalty: f64,
}

impl DsaTiming {
    /// The Sapphire Rapids DSA calibration.
    pub fn spr() -> DsaTiming {
        DsaTiming {
            portal_accept: SimDuration::from_ns(40),
            dispatch: SimDuration::from_ns(30),
            pe_fixed: SimDuration::from_ns(50),
            pe_mgbps: 30_000,
            fabric_mgbps: 30_000,
            completion_write: SimDuration::from_ns(25),
            batch_fixed: SimDuration::from_ns(60),
            read_buffers: 96,
            read_buffer_bytes: 64,
            spill_derate: 0.25,
            same_channel_penalty: 1.04,
        }
    }

    /// Effective read bandwidth cap (milli-GB/s) for one engine reading a
    /// medium with the given load-to-use latency: MLP-limited streaming,
    /// `buffers × entry / latency`.
    pub fn read_mlp_mgbps(&self, latency: SimDuration) -> u64 {
        if latency.is_zero() {
            return self.fabric_mgbps;
        }
        // bytes per ns * 1000 = mGB/s
        let bytes = self.read_buffers as u64 * self.read_buffer_bytes as u64;
        bytes * 1_000_000 / latency.as_ps().max(1)
    }
}

/// CBDMA (Ice Lake) timing: the predecessor's higher offload cost and
/// lower per-channel rate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CbdmaTiming {
    /// Cost of building a ring descriptor and ringing the doorbell
    /// (memory-mapped, non-posted elements; no MOVDIR64B).
    pub doorbell: SimDuration,
    /// Device-side fetch of the descriptor from the memory ring.
    pub ring_fetch: SimDuration,
    /// Fixed per-descriptor processing cost.
    pub chan_fixed: SimDuration,
    /// Peak streaming rate per channel in milli-GB/s.
    pub chan_mgbps: u64,
    /// Device aggregate cap in milli-GB/s.
    pub fabric_mgbps: u64,
    /// Completion signalling (status write the core polls, or interrupt).
    pub completion: SimDuration,
}

impl CbdmaTiming {
    /// The Ice Lake CBDMA calibration — yields the paper's ≈2.1× average
    /// DSA advantage over matched transfer-size sweeps.
    pub fn icx() -> CbdmaTiming {
        CbdmaTiming {
            doorbell: SimDuration::from_ns(180),
            ring_fetch: SimDuration::from_ns(250),
            chan_fixed: SimDuration::from_ns(120),
            chan_mgbps: 13_500,
            fabric_mgbps: 28_000,
            completion: SimDuration::from_ns(60),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spr_fabric_is_30gbps() {
        assert_eq!(DsaTiming::spr().fabric_mgbps, 30_000);
    }

    #[test]
    fn mlp_cap_hides_local_dram_latency() {
        let t = DsaTiming::spr();
        // 96 × 64 B over 114 ns ≈ 53 GB/s > 30 GB/s fabric: hidden.
        assert!(t.read_mlp_mgbps(SimDuration::from_ns(114)) > t.fabric_mgbps);
        // CXL at 350 ns: ≈ 17.5 GB/s < fabric: latency becomes visible.
        assert!(t.read_mlp_mgbps(SimDuration::from_ns(350)) < t.fabric_mgbps);
        // Zero latency degenerates to the fabric cap.
        assert_eq!(t.read_mlp_mgbps(SimDuration::ZERO), t.fabric_mgbps);
    }

    #[test]
    fn cbdma_has_higher_offload_cost_and_lower_rate() {
        let dsa = DsaTiming::spr();
        let cb = CbdmaTiming::icx();
        assert!(cb.doorbell + cb.ring_fetch > dsa.portal_accept + dsa.dispatch);
        assert!(cb.chan_mgbps < dsa.pe_mgbps);
    }
}
