//! Pooled struct-of-arrays storage for in-flight events.
//!
//! The engine's former hot path moved an owned `Event<M>` — four words plus
//! the payload — through the scheduler on every push and pop, and the
//! calendar queue kept its own boxed payload slab on the side. This module
//! centralises payload ownership instead: every scheduled event lives in one
//! [`EventStore`], laid out as parallel arrays (time, sequence number,
//! target, payload), and schedulers move bare `u32` slot indices. The free
//! list recycles slots LIFO, so a closed-loop simulation reaches its
//! high-water population once and then never allocates again — and the slot
//! an event releases is the hottest line in cache when the next send
//! reclaims it.
//!
//! Layout notes:
//!
//! * `time`/`seq` are separate `Vec<u64>`s rather than an array-of-structs
//!   so schedulers that only need ordering metadata (tie-breaking a merge,
//!   prefetching ahead of the drain cursor) touch dense lines without
//!   dragging payloads through cache.
//! * payloads are `Option<M>` slots taken by value on release; a
//!   double-release is therefore a loud panic instead of silent corruption.

use crate::engine::ComponentId;
use crate::time::SimTime;

/// Arena-pooled event storage: parallel arrays plus a LIFO free list.
///
/// Slots are allocated by [`alloc`](EventStore::alloc), handed to a
/// scheduler as part of an [`EventKey`](crate::sched::EventKey), and
/// returned to the pool by [`release`](EventStore::release) when the engine
/// delivers the event.
pub struct EventStore<M> {
    time: Vec<u64>,
    seq: Vec<u64>,
    target: Vec<u32>,
    msg: Vec<Option<M>>,
    free: Vec<u32>,
}

impl<M> EventStore<M> {
    /// An empty store. Arrays grow to the peak live-event population and
    /// are reused from then on.
    pub fn new() -> EventStore<M> {
        EventStore {
            time: Vec::new(),   // dsa-lint: allow(hot-alloc, empty arena built once per engine)
            seq: Vec::new(),    // dsa-lint: allow(hot-alloc, empty arena built once per engine)
            target: Vec::new(), // dsa-lint: allow(hot-alloc, empty arena built once per engine)
            msg: Vec::new(),    // dsa-lint: allow(hot-alloc, empty arena built once per engine)
            free: Vec::new(),   // dsa-lint: allow(hot-alloc, empty arena built once per engine)
        }
    }

    /// Stores one event, returning its slot index.
    #[inline]
    pub fn alloc(&mut self, time: SimTime, seq: u64, target: ComponentId, msg: M) -> u32 {
        let t = time.as_ps();
        let tgt = target.index() as u32;
        match self.free.pop() {
            Some(slot) => {
                let i = slot as usize;
                self.time[i] = t;
                self.seq[i] = seq;
                self.target[i] = tgt;
                debug_assert!(
                    self.msg[i].is_none(),
                    "free-listed slot {slot} still owned a payload"
                );
                self.msg[i] = Some(msg);
                slot
            }
            None => {
                assert!(self.time.len() < u32::MAX as usize, "event store slot space exhausted");
                self.time.push(t);
                self.seq.push(seq);
                self.target.push(tgt);
                self.msg.push(Some(msg));
                (self.time.len() - 1) as u32
            }
        }
    }

    /// Takes the event out of `slot` and recycles the slot.
    ///
    /// Panics if the slot is not live (a scheduler returned a slot twice).
    #[inline]
    pub fn release(&mut self, slot: u32) -> (ComponentId, M) {
        let i = slot as usize;
        let msg = match self.msg[i].take() {
            Some(m) => m,
            None => panic!("event store slot {slot} released twice"),
        };
        self.free.push(slot);
        (ComponentId::from_index(self.target[i] as usize), msg)
    }

    /// Delivery time of the live event in `slot`.
    #[inline]
    pub fn time(&self, slot: u32) -> SimTime {
        SimTime::from_ps(self.time[slot as usize])
    }

    /// Sequence number of the live event in `slot`.
    #[inline]
    pub fn seq(&self, slot: u32) -> u64 {
        self.seq[slot as usize]
    }

    /// Target component of the live event in `slot`.
    #[inline]
    pub fn target(&self, slot: u32) -> ComponentId {
        ComponentId::from_index(self.target[slot as usize] as usize)
    }

    /// Number of live (allocated, not yet released) events.
    pub fn live(&self) -> usize {
        self.time.len() - self.free.len()
    }

    /// High-water slot count — the arena never shrinks, so this is the peak
    /// concurrent event population since construction.
    pub fn high_water(&self) -> usize {
        self.time.len()
    }

    /// Hints the CPU to pull `slot`'s payload and metadata toward L1.
    ///
    /// Schedulers that know their drain order call this a few pops ahead so
    /// the engine's release is a cache hit. Purely a hint: no-op on
    /// non-x86_64 targets and never required for correctness.
    #[inline]
    pub fn prefetch(&self, slot: u32) {
        let i = slot as usize;
        if i < self.msg.len() {
            // Skipped under Miri: the hint has no semantics the
            // interpreter should model, and keeping raw-pointer intrinsics
            // out of the run keeps strict-provenance checking focused on
            // the pool's real index recycling.
            #[cfg(all(target_arch = "x86_64", not(miri)))]
            unsafe {
                use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
                _mm_prefetch((&raw const self.msg[i]).cast::<i8>(), _MM_HINT_T0);
                _mm_prefetch((&raw const self.target[i]).cast::<i8>(), _MM_HINT_T0);
                _mm_prefetch((&raw const self.seq[i]).cast::<i8>(), _MM_HINT_T0);
            }
        }
    }
}

impl<M> Default for EventStore<M> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(i: usize) -> ComponentId {
        ComponentId::from_index(i)
    }

    #[test]
    fn alloc_release_roundtrip() {
        let mut s: EventStore<&'static str> = EventStore::new();
        let a = s.alloc(SimTime::from_ps(10), 1, id(3), "a");
        let b = s.alloc(SimTime::from_ps(20), 2, id(4), "b");
        assert_ne!(a, b);
        assert_eq!(s.live(), 2);
        assert_eq!(s.time(a), SimTime::from_ps(10));
        assert_eq!(s.seq(b), 2);
        assert_eq!(s.target(b), id(4));
        assert_eq!(s.release(a), (id(3), "a"));
        assert_eq!(s.release(b), (id(4), "b"));
        assert_eq!(s.live(), 0);
    }

    #[test]
    fn slots_recycle_lifo_and_cap_at_high_water() {
        let mut s: EventStore<u64> = EventStore::new();
        for round in 0..50u64 {
            let slots: Vec<u32> =
                (0..8).map(|i| s.alloc(SimTime::from_ps(round), round * 8 + i, id(0), i)).collect();
            for &slot in slots.iter().rev() {
                s.release(slot);
            }
        }
        assert_eq!(s.high_water(), 8, "population never exceeded 8 concurrent events");
        assert_eq!(s.live(), 0);
    }

    #[test]
    #[should_panic(expected = "released twice")]
    fn double_release_panics() {
        let mut s: EventStore<u8> = EventStore::new();
        let slot = s.alloc(SimTime::ZERO, 1, id(0), 7);
        s.release(slot);
        s.release(slot);
    }

    #[test]
    fn drop_payloads_are_released_exactly_once() {
        use std::rc::Rc;
        let token = Rc::new(());
        let mut s: EventStore<Rc<()>> = EventStore::new();
        let a = s.alloc(SimTime::ZERO, 1, id(0), token.clone());
        let b = s.alloc(SimTime::ZERO, 2, id(0), token.clone());
        drop(s.release(a));
        let (_, payload) = s.release(b);
        drop(payload);
        assert_eq!(Rc::strong_count(&token), 1, "no payload leaked or double-dropped");
    }
}
