//! A discrete-event scheduler for scenarios with interacting agents.
//!
//! The [`timeline`](crate::timeline) calculus covers resources driven by a
//! single logical producer. When *independent* agents interact — co-running
//! processes polluting a shared cache, the stages of a software pipeline —
//! a classic event loop is the right tool.
//!
//! The engine is generic over the message type `M` and a shared state `S`
//! (typically the memory-system model), so components never need interior
//! mutability or `Rc` cycles:
//!
//! ```
//! use dsa_sim::engine::{Component, Ctx, Engine};
//! use dsa_sim::time::SimDuration;
//!
//! struct Ticker { left: u32 }
//! impl Component<&'static str, u32> for Ticker {
//!     fn handle(&mut self, msg: &'static str, ctx: &mut Ctx<'_, &'static str>, total: &mut u32) {
//!         assert_eq!(msg, "tick");
//!         *total += 1;
//!         if self.left > 0 {
//!             self.left -= 1;
//!             ctx.send_self(SimDuration::from_ns(10), "tick");
//!         }
//!     }
//! }
//!
//! let mut eng = Engine::new(0u32);
//! let id = eng.add(Ticker { left: 3 });
//! eng.post(dsa_sim::SimTime::ZERO, id, "tick");
//! eng.run();
//! assert_eq!(*eng.shared(), 4);
//! ```

use crate::sched::{CalendarScheduler, EventKey, Scheduler};
use crate::store::EventStore;
use crate::time::{SimDuration, SimTime};

/// Identifies a component registered with an [`Engine`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ComponentId(usize);

impl ComponentId {
    /// The raw slab index (useful for labelling results).
    pub fn index(self) -> usize {
        self.0
    }

    /// Builds an id from a raw index — for driving a [`Scheduler`]
    /// directly (property tests, benchmarks). Posting to an engine with an
    /// id it did not hand out panics at dispatch.
    pub fn from_index(index: usize) -> ComponentId {
        ComponentId(index)
    }
}

/// A simulated agent.
///
/// Implementations receive messages addressed to them together with a
/// scheduling context and exclusive access to the shared state `S`.
pub trait Component<M, S> {
    /// Handles one message delivered at `ctx.now()`.
    fn handle(&mut self, msg: M, ctx: &mut Ctx<'_, M>, shared: &mut S);
}

/// Scheduling context handed to [`Component::handle`].
pub struct Ctx<'a, M> {
    now: SimTime,
    me: ComponentId,
    outbox: &'a mut Vec<(SimTime, ComponentId, M)>,
    stop: &'a mut bool,
}

impl<M> Ctx<'_, M> {
    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the component currently executing.
    pub fn me(&self) -> ComponentId {
        self.me
    }

    /// Schedules `msg` for `target` after `delay`.
    pub fn send(&mut self, delay: SimDuration, target: ComponentId, msg: M) {
        self.outbox.push((self.now + delay, target, msg));
    }

    /// Schedules `msg` for the executing component itself after `delay`.
    pub fn send_self(&mut self, delay: SimDuration, msg: M) {
        let me = self.me;
        self.send(delay, me, msg);
    }

    /// Schedules `msg` for `target` at an absolute time (>= now).
    pub fn send_at(&mut self, at: SimTime, target: ComponentId, msg: M) {
        debug_assert!(at >= self.now, "scheduling into the past");
        self.outbox.push((at.max(self.now), target, msg));
    }

    /// Requests the engine to stop after the current event.
    pub fn stop(&mut self) {
        *self.stop = true;
    }
}

/// An event-dispatch observer: called for every delivered event with the
/// delivery time, the target component, and the message, *before* the
/// component handles it. The hook point tracing layers (e.g.
/// `dsa-telemetry`) use to annotate event-driven workloads without the
/// components knowing. For *causal* structure (which event scheduled
/// which), see the companion [`CauseObserver`].
pub type Observer<M> = Box<dyn FnMut(SimTime, ComponentId, &M)>;

/// One causal edge in the event DAG: event `child` was scheduled while
/// event `parent` was executing. Sequence numbers double as trace IDs —
/// they are assigned deterministically at scheduling time, so the same
/// run always yields the same edge set regardless of scheduler impl.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CausalEdge {
    /// Sequence number of the event whose handler scheduled `child`;
    /// [`EXTERNAL`](CausalEdge::EXTERNAL) for messages posted from
    /// outside the simulation via [`Engine::post`].
    pub parent: u64,
    /// Sequence number of the newly scheduled event.
    pub child: u64,
    /// Simulated time at which the edge was created (the parent's
    /// execution instant; the post time for external edges).
    pub scheduled_at: SimTime,
    /// Simulated time at which `child` will fire.
    pub fire_at: SimTime,
    /// The component `child` is addressed to.
    pub target: ComponentId,
}

impl CausalEdge {
    /// The pseudo-parent of externally posted events. Real sequence
    /// numbers start at 1, so 0 is unambiguous.
    pub const EXTERNAL: u64 = 0;

    /// Queueing/transit latency of this hop: how long `child` sat
    /// scheduled before firing.
    pub fn hop_latency(&self) -> SimDuration {
        self.fire_at.saturating_duration_since(self.scheduled_at)
    }
}

/// A causal-edge observer: called once per scheduled event, at scheduling
/// time. Installed separately from [`Observer`] so existing dispatch
/// tracing keeps its signature; a run's replay digest is unaffected by
/// whether either observer is installed.
pub type CauseObserver = Box<dyn FnMut(CausalEdge)>;

/// The event loop.
///
/// Generic over the pending-event [`Scheduler`] `Q` (default:
/// [`CalendarScheduler`]). The reference [`HeapScheduler`]
/// (crate::sched::HeapScheduler) can be swapped in via
/// [`with_scheduler`](Engine::with_scheduler) — the determinism tests diff
/// the two and assert bit-identical event streams.
pub struct Engine<M, S, Q: Scheduler<M> = CalendarScheduler> {
    // `None` marks the slot of the component currently executing — the
    // box is taken out for the duration of its `handle` call, which
    // sidesteps aliasing with `&mut self` without allocating a tombstone.
    components: Vec<Option<Box<dyn Component<M, S>>>>,
    sched: Q,
    // Pooled payload arena: schedulers move 20-byte keys, payloads stay
    // put here and slots recycle LIFO, so the steady-state loop never
    // allocates.
    store: EventStore<M>,
    // Reused across `run_until` calls so steady-state dispatch does not
    // allocate.
    outbox: Vec<(SimTime, ComponentId, M)>,
    shared: S,
    now: SimTime,
    seq: u64,
    events_processed: u64,
    observer: Option<Observer<M>>,
    cause_observer: Option<CauseObserver>,
    // Sequence number of the event currently being handled; EXTERNAL (0)
    // outside `run_until`, so `post` edges attribute to the outside world.
    current_cause: u64,
}

impl<M, S> Engine<M, S> {
    /// Creates an engine owning the shared state `shared`, scheduled by a
    /// [`CalendarScheduler`].
    pub fn new(shared: S) -> Self {
        Engine::with_scheduler(shared, CalendarScheduler::new())
    }
}

impl<M, S, Q: Scheduler<M>> Engine<M, S, Q> {
    /// Creates an engine with an explicit scheduler implementation.
    pub fn with_scheduler(shared: S, sched: Q) -> Self {
        Self {
            components: Vec::new(),
            sched,
            store: EventStore::new(),
            outbox: Vec::new(),
            shared,
            now: SimTime::ZERO,
            seq: 0,
            events_processed: 0,
            observer: None,
            cause_observer: None,
            current_cause: CausalEdge::EXTERNAL,
        }
    }

    /// Installs an observer invoked on every event dispatch (tracing,
    /// metrics). Replaces any previous observer.
    pub fn set_observer(&mut self, obs: impl FnMut(SimTime, ComponentId, &M) + 'static) {
        self.observer = Some(Box::new(obs));
    }

    /// Removes the observer, if any.
    pub fn clear_observer(&mut self) {
        self.observer = None;
    }

    /// Installs a causal-edge observer: invoked once per scheduled event
    /// with the [`CausalEdge`] linking it to the event whose handler
    /// scheduled it. Replaces any previous cause observer. Purely
    /// passive — event ordering, sequence numbers, and replay digests are
    /// identical with or without one installed.
    pub fn set_cause_observer(&mut self, obs: impl FnMut(CausalEdge) + 'static) {
        self.cause_observer = Some(Box::new(obs));
    }

    /// Removes the cause observer, if any.
    pub fn clear_cause_observer(&mut self) {
        self.cause_observer = None;
    }

    /// Registers a component, returning its id.
    pub fn add(&mut self, c: impl Component<M, S> + 'static) -> ComponentId {
        self.components.push(Some(Box::new(c)));
        ComponentId(self.components.len() - 1)
    }

    /// Posts an initial message from outside the simulation.
    pub fn post(&mut self, at: SimTime, target: ComponentId, msg: M) {
        self.seq += 1;
        if let Some(obs) = &mut self.cause_observer {
            obs(CausalEdge {
                parent: CausalEdge::EXTERNAL,
                child: self.seq,
                scheduled_at: self.now,
                fire_at: at,
                target,
            });
        }
        let slot = self.store.alloc(at, self.seq, target, msg);
        self.sched.push(EventKey { time: at, seq: self.seq, slot }, &self.store);
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Shared state accessor.
    pub fn shared(&self) -> &S {
        &self.shared
    }

    /// Mutable shared state accessor.
    pub fn shared_mut(&mut self) -> &mut S {
        &mut self.shared
    }

    /// Number of events handled so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Peak concurrent event population since construction — the size the
    /// pooled event arena grew to. Steady-state runs hold this flat.
    pub fn event_pool_high_water(&self) -> usize {
        self.store.high_water()
    }

    /// Runs until the event queue drains (or a component calls
    /// [`Ctx::stop`]). Returns the final simulated time.
    pub fn run(&mut self) -> SimTime {
        self.run_until(SimTime::MAX)
    }

    /// Runs until the queue drains, a component stops the engine, or the
    /// next event would be after `deadline` (that event stays queued).
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        let mut stop = false;
        while let Some(key) = self.sched.pop_before(deadline, &self.store) {
            debug_assert!(key.time >= self.now, "event queue went backwards");
            let (target, msg) = self.store.release(key.slot);
            self.now = key.time;
            self.events_processed += 1;
            self.current_cause = key.seq;
            if let Some(obs) = &mut self.observer {
                obs(key.time, target, &msg);
            }
            let idx = target.0;
            assert!(idx < self.components.len(), "message for unknown component {idx}");
            // Take the component out to sidestep aliasing with `self`.
            let Some(mut comp) = self.components[idx].take() else {
                unreachable!("component {idx} received a message while executing");
            };
            {
                let mut ctx =
                    Ctx { now: self.now, me: target, outbox: &mut self.outbox, stop: &mut stop };
                comp.handle(msg, &mut ctx, &mut self.shared);
            }
            self.components[idx] = Some(comp);
            for (time, target, msg) in self.outbox.drain(..) {
                self.seq += 1;
                if let Some(obs) = &mut self.cause_observer {
                    obs(CausalEdge {
                        parent: self.current_cause,
                        child: self.seq,
                        scheduled_at: self.now,
                        fire_at: time,
                        target,
                    });
                }
                let slot = self.store.alloc(time, self.seq, target, msg);
                self.sched.push(EventKey { time, seq: self.seq, slot }, &self.store);
            }
            if stop {
                break;
            }
        }
        self.current_cause = CausalEdge::EXTERNAL;
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Msg {
        Ping(u32),
        Pong(u32),
    }

    struct Pinger {
        peer: Option<ComponentId>,
        rounds: u32,
    }

    impl Component<Msg, Vec<(f64, Msg)>> for Pinger {
        fn handle(&mut self, msg: Msg, ctx: &mut Ctx<'_, Msg>, log: &mut Vec<(f64, Msg)>) {
            log.push((ctx.now().as_ns_f64(), msg.clone()));
            match msg {
                Msg::Ping(n) => {
                    if let Some(peer) = self.peer {
                        ctx.send(SimDuration::from_ns(5), peer, Msg::Pong(n));
                    }
                }
                Msg::Pong(n) => {
                    if n + 1 < self.rounds {
                        if let Some(peer) = self.peer {
                            ctx.send(SimDuration::from_ns(5), peer, Msg::Ping(n + 1));
                        }
                    } else {
                        ctx.stop();
                    }
                }
            }
        }
    }

    #[test]
    fn ping_pong_runs_in_order() {
        let mut eng = Engine::new(Vec::new());
        let a = eng.add(Pinger { peer: None, rounds: 3 });
        let b = eng.add(Pinger { peer: None, rounds: 3 });
        // wire peers (components are boxed; easiest is to rebuild)
        let mut eng = Engine::new(Vec::new());
        let a2 = eng.add(Pinger { peer: Some(b), rounds: 3 });
        let b2 = eng.add(Pinger { peer: Some(a), rounds: 3 });
        assert_eq!((a2, b2), (a, b));
        eng.post(SimTime::ZERO, a2, Msg::Ping(0));
        let end = eng.run();
        assert_eq!(end, SimTime::from_ns(25));
        let log = eng.shared();
        assert_eq!(log.len(), 6);
        assert_eq!(log[0].1, Msg::Ping(0));
        assert_eq!(log[5].1, Msg::Pong(2));
        // timestamps strictly non-decreasing
        assert!(log.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn simultaneous_events_fifo() {
        struct Rec(u32);
        impl Component<u32, Vec<u32>> for Rec {
            fn handle(&mut self, msg: u32, _ctx: &mut Ctx<'_, u32>, log: &mut Vec<u32>) {
                log.push(self.0 * 100 + msg);
            }
        }
        let mut eng = Engine::new(Vec::new());
        let a = eng.add(Rec(1));
        let b = eng.add(Rec(2));
        eng.post(SimTime::from_ns(10), a, 1);
        eng.post(SimTime::from_ns(10), b, 2);
        eng.post(SimTime::from_ns(10), a, 3);
        eng.run();
        assert_eq!(eng.shared(), &vec![101, 202, 103]);
    }

    #[test]
    fn run_until_leaves_future_events() {
        struct Echo;
        impl Component<(), u32> for Echo {
            fn handle(&mut self, _: (), _ctx: &mut Ctx<'_, ()>, n: &mut u32) {
                *n += 1;
            }
        }
        let mut eng = Engine::new(0u32);
        let e = eng.add(Echo);
        eng.post(SimTime::from_ns(1), e, ());
        eng.post(SimTime::from_ns(100), e, ());
        eng.run_until(SimTime::from_ns(50));
        assert_eq!(*eng.shared(), 1);
        eng.run();
        assert_eq!(*eng.shared(), 2);
        assert_eq!(eng.events_processed(), 2);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    struct Chain {
        next: Option<ComponentId>,
    }
    impl Component<u32, Vec<u32>> for Chain {
        fn handle(&mut self, n: u32, ctx: &mut Ctx<'_, u32>, log: &mut Vec<u32>) {
            log.push(n);
            if let Some(next) = self.next {
                // send_at with an absolute time equal to now is legal.
                ctx.send_at(ctx.now(), next, n + 1);
            }
        }
    }

    #[test]
    fn send_at_now_delivers_in_fifo_order() {
        let mut eng = Engine::new(Vec::new());
        let c = eng.add(Chain { next: None });
        let b = eng.add(Chain { next: Some(c) });
        let a = eng.add(Chain { next: Some(b) });
        eng.post(SimTime::from_ns(5), a, 0);
        let end = eng.run();
        assert_eq!(eng.shared(), &vec![0, 1, 2]);
        assert_eq!(end, SimTime::from_ns(5), "zero-delay chain stays at one instant");
    }

    #[test]
    fn stop_halts_immediately_leaving_queue() {
        struct Stopper;
        impl Component<u32, u32> for Stopper {
            fn handle(&mut self, _: u32, ctx: &mut Ctx<'_, u32>, count: &mut u32) {
                *count += 1;
                ctx.stop();
            }
        }
        let mut eng = Engine::new(0u32);
        let s = eng.add(Stopper);
        eng.post(SimTime::from_ns(1), s, 1);
        eng.post(SimTime::from_ns(2), s, 2);
        eng.run();
        assert_eq!(*eng.shared(), 1, "stop() prevents the second delivery");
        // A later run resumes from the queue.
        eng.run();
        assert_eq!(*eng.shared(), 2);
    }

    #[test]
    fn observer_sees_every_dispatch_in_order() {
        use std::cell::RefCell;
        use std::rc::Rc;

        let mut eng = Engine::new(Vec::new());
        let c = eng.add(Chain { next: None });
        let b = eng.add(Chain { next: Some(c) });
        let seen: Rc<RefCell<Vec<(u64, usize, u32)>>> = Rc::new(RefCell::new(Vec::new()));
        let sink = seen.clone();
        eng.set_observer(move |t, id, msg: &u32| {
            sink.borrow_mut().push((t.as_ns_f64() as u64, id.index(), *msg));
        });
        eng.post(SimTime::from_ns(7), b, 1);
        eng.run();
        assert_eq!(
            *seen.borrow(),
            vec![(7, b.index(), 1), (7, c.index(), 2)],
            "observer fires once per delivered event, in dispatch order"
        );
        // Clearing the observer silences it without disturbing the run.
        eng.clear_observer();
        eng.post(SimTime::from_ns(9), c, 5);
        eng.run();
        assert_eq!(seen.borrow().len(), 2);
        assert_eq!(eng.shared().len(), 3);
    }

    #[test]
    fn cause_observer_links_child_events_to_their_parent() {
        use std::cell::RefCell;
        use std::rc::Rc;

        let mut eng = Engine::new(Vec::new());
        let c = eng.add(Chain { next: None });
        let b = eng.add(Chain { next: Some(c) });
        let a = eng.add(Chain { next: Some(b) });
        let edges: Rc<RefCell<Vec<CausalEdge>>> = Rc::new(RefCell::new(Vec::new()));
        let sink = edges.clone();
        eng.set_cause_observer(move |e| sink.borrow_mut().push(e));
        eng.post(SimTime::from_ns(5), a, 0);
        eng.run();
        let edges = edges.borrow();
        // Three events total: the external post plus two chained sends.
        assert_eq!(edges.len(), 3);
        assert_eq!(edges[0].parent, CausalEdge::EXTERNAL);
        assert_eq!(edges[0].child, 1);
        assert_eq!(edges[0].target, a);
        // Each chained hop is caused by the event that scheduled it.
        assert_eq!(
            edges[1],
            CausalEdge {
                parent: 1,
                child: 2,
                scheduled_at: SimTime::from_ns(5),
                fire_at: SimTime::from_ns(5),
                target: b,
            }
        );
        assert_eq!((edges[2].parent, edges[2].child, edges[2].target), (2, 3, c));
        // Parents always precede children in sequence order.
        assert!(edges.iter().all(|e| e.parent < e.child));
    }

    #[test]
    fn cause_observer_does_not_perturb_the_run() {
        let run = |traced: bool| {
            let mut eng = Engine::new(Vec::new());
            let c = eng.add(Chain { next: None });
            let b = eng.add(Chain { next: Some(c) });
            if traced {
                eng.set_cause_observer(|_| {});
            }
            eng.post(SimTime::from_ns(5), b, 0);
            let end = eng.run();
            (end, eng.events_processed(), eng.shared().clone())
        };
        assert_eq!(run(false), run(true), "tracing must be invisible to the simulation");
    }

    #[test]
    fn hop_latency_measures_scheduling_delay() {
        let e = CausalEdge {
            parent: CausalEdge::EXTERNAL,
            child: 1,
            scheduled_at: SimTime::from_ns(10),
            fire_at: SimTime::from_ns(35),
            target: ComponentId::from_index(0),
        };
        assert_eq!(e.hop_latency(), SimDuration::from_ns(25));
    }

    #[test]
    fn me_identifies_the_running_component() {
        struct WhoAmI;
        impl Component<(), Vec<usize>> for WhoAmI {
            fn handle(&mut self, _: (), ctx: &mut Ctx<'_, ()>, ids: &mut Vec<usize>) {
                ids.push(ctx.me().index());
            }
        }
        let mut eng = Engine::new(Vec::new());
        let a = eng.add(WhoAmI);
        let b = eng.add(WhoAmI);
        eng.post(SimTime::ZERO, b, ());
        eng.post(SimTime::ZERO, a, ());
        eng.run();
        assert_eq!(eng.shared(), &vec![b.index(), a.index()]);
    }
}
