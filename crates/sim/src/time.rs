//! Simulated time.
//!
//! All timing in this workspace is expressed in integer **picoseconds** so
//! that arithmetic is exact and simulations are bit-for-bit reproducible.
//! Picosecond resolution leaves enough headroom to represent sub-nanosecond
//! quantities (e.g. "bytes per cycle" at multi-GHz clocks) without floating
//! point drift, while a `u64` still spans ~213 days of simulated time.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulation clock, in picoseconds since t=0.
///
/// ```
/// use dsa_sim::time::{SimTime, SimDuration};
/// let t = SimTime::from_ns(5) + SimDuration::from_ns(3);
/// assert_eq!(t.as_ns_f64(), 8.0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in picoseconds.
///
/// ```
/// use dsa_sim::time::SimDuration;
/// let d = SimDuration::from_us(2) + SimDuration::from_ns(500);
/// assert_eq!(d.as_ps(), 2_500_000);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The latest representable instant (used as "never").
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from picoseconds since t=0.
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }
    /// Creates an instant from nanoseconds since t=0.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * 1_000)
    }
    /// Creates an instant from microseconds since t=0.
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000_000)
    }
    /// Creates an instant from milliseconds since t=0.
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000_000)
    }
    /// Picoseconds since t=0.
    pub const fn as_ps(self) -> u64 {
        self.0
    }
    /// Nanoseconds since t=0 as a float (for reporting only).
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }
    /// Microseconds since t=0 as a float (for reporting only).
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
    /// Seconds since t=0 as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier > self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(earlier <= self, "duration_since with later argument");
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating difference; zero if `earlier > self`.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a span from picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        SimDuration(ps)
    }
    /// Creates a span from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns * 1_000)
    }
    /// Creates a span from microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * 1_000_000)
    }
    /// Creates a span from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms * 1_000_000_000)
    }
    /// Creates a span from a float number of nanoseconds (rounded).
    ///
    /// Used at the *edges* of the system when converting calibrated model
    /// parameters; all internal arithmetic stays in integers.
    pub fn from_ns_f64(ns: f64) -> Self {
        debug_assert!(ns >= 0.0 && ns.is_finite(), "invalid duration: {ns} ns");
        SimDuration((ns * 1e3).round() as u64)
    }
    /// Picoseconds in this span.
    pub const fn as_ps(self) -> u64 {
        self.0
    }
    /// Nanoseconds as a float (for reporting only).
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }
    /// Microseconds as a float (for reporting only).
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
    /// Seconds as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }
    /// True if this span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The longer of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The shorter of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Multiplies the span by an integer factor, saturating at the maximum.
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }
}

/// Scales a byte count by a dimensionless float `factor`, truncating like
/// the `as` cast it replaces.
///
/// This module is the one sanctioned home for float↔int conversions in
/// size/time arithmetic (lint rule `float-cast`); every other crate calls
/// this instead of casting by hand, so the truncation behaviour is defined
/// in exactly one place.
///
/// ```
/// use dsa_sim::time::scale_bytes;
/// assert_eq!(scale_bytes(100, 2.0), 200);
/// assert_eq!(scale_bytes(100, 0.0), 0);
/// assert_eq!(scale_bytes(3, 0.5), 1);
/// ```
pub fn scale_bytes(bytes: u64, factor: f64) -> u64 {
    debug_assert!(factor >= 0.0 && factor.is_finite(), "invalid scale factor: {factor}");
    (bytes as f64 * factor) as u64
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.3}ns", self.as_ns_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e9)
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.3}ns", self.as_ns_f64())
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Converts a byte count and a bandwidth in GB/s into a transfer duration.
///
/// Uses integer arithmetic: `GB/s == bytes/ns`, so the duration in
/// picoseconds is `bytes * 1000 / gbps`. Bandwidths are expressed in
/// *milli-GB/s* (`mgbps`) to allow fractional rates without floats.
///
/// ```
/// use dsa_sim::time::transfer_time_mgbps;
/// // 30 GB/s == 30_000 mGB/s; 3 KB takes 100 ns.
/// assert_eq!(transfer_time_mgbps(3072, 30_000).as_ns_f64(), 102.4);
/// ```
pub fn transfer_time_mgbps(bytes: u64, mgbps: u64) -> SimDuration {
    assert!(mgbps > 0, "bandwidth must be positive");
    // ps = bytes / (mgbps / 1000 bytes-per-ns) * 1000 ps-per-ns
    //    = bytes * 1_000_000 / mgbps
    SimDuration::from_ps(bytes.saturating_mul(1_000_000) / mgbps)
}

/// Converts a duration and byte count into achieved bandwidth in GB/s.
pub fn achieved_gbps(bytes: u64, elapsed: SimDuration) -> f64 {
    if elapsed.is_zero() {
        return f64::INFINITY;
    }
    bytes as f64 / elapsed.as_ns_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_ns(100);
        let d = SimDuration::from_ns(40);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
        assert_eq!(t.duration_since(SimTime::ZERO), SimDuration::from_ns(100));
    }

    #[test]
    fn unit_constructors_agree() {
        assert_eq!(SimTime::from_us(1), SimTime::from_ns(1000));
        assert_eq!(SimTime::from_ms(1), SimTime::from_us(1000));
        assert_eq!(SimDuration::from_us(1), SimDuration::from_ns(1000));
        assert_eq!(SimDuration::from_ms(1), SimDuration::from_us(1000));
    }

    #[test]
    fn saturating_behaviour() {
        assert_eq!(SimTime::ZERO.saturating_duration_since(SimTime::from_ns(5)), SimDuration::ZERO);
        assert_eq!(SimTime::MAX + SimDuration::from_ns(1), SimTime::MAX);
        assert_eq!(SimDuration::from_ns(1) - SimDuration::from_ns(2), SimDuration::ZERO);
    }

    #[test]
    fn transfer_time_matches_bandwidth() {
        // 30 GB/s, 30 bytes -> 1 ns
        assert_eq!(transfer_time_mgbps(30, 30_000), SimDuration::from_ns(1));
        // 1 GB/s, 4096 bytes -> 4096 ns
        assert_eq!(transfer_time_mgbps(4096, 1_000), SimDuration::from_ns(4096));
        // fractional bandwidth: 0.5 GB/s
        assert_eq!(transfer_time_mgbps(1024, 500), SimDuration::from_ns(2048));
    }

    #[test]
    fn achieved_bandwidth_inverts_transfer_time() {
        let d = transfer_time_mgbps(1 << 20, 30_000);
        let g = achieved_gbps(1 << 20, d);
        assert!((g - 30.0).abs() < 0.01, "got {g}");
    }

    #[test]
    fn ordering_and_min_max() {
        let a = SimTime::from_ns(1);
        let b = SimTime::from_ns(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert!(SimDuration::from_ns(1) < SimDuration::from_ns(2));
        assert_eq!(SimDuration::from_ns(1).max(SimDuration::from_ns(2)), SimDuration::from_ns(2));
    }

    #[test]
    fn display_formats_are_nonempty() {
        assert!(!format!("{}", SimTime::from_ns(5)).is_empty());
        assert!(!format!("{}", SimDuration::from_ns(5)).is_empty());
        assert!(format!("{}", SimDuration::from_ms(2)).contains("ms"));
        assert!(format!("{}", SimDuration::from_us(2)).contains("us"));
    }

    #[test]
    fn duration_sum_and_scale() {
        let total: SimDuration =
            [SimDuration::from_ns(1), SimDuration::from_ns(2), SimDuration::from_ns(3)]
                .into_iter()
                .sum();
        assert_eq!(total, SimDuration::from_ns(6));
        assert_eq!(total * 2, SimDuration::from_ns(12));
        assert_eq!(total / 3, SimDuration::from_ns(2));
    }
}
