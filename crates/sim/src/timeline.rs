//! Resource timelines: the reservation calculus used by the device models.
//!
//! A *timeline* represents a contended resource that serves requests in the
//! order they become ready. Reserving capacity returns the interval during
//! which the request actually holds the resource; queueing delay, saturation
//! and pipelining then *emerge* from chains of reservations rather than being
//! hand-coded in each experiment.
//!
//! Three flavours are provided:
//!
//! * [`Timeline`] — a single server (e.g. an ENQCMD submission port).
//! * [`MultiServer`] — `k` identical servers (e.g. the processing engines of
//!   a DSA group).
//! * [`BwResource`] — a bandwidth-shaped pipe (e.g. a DRAM channel set, the
//!   on-die I/O fabric, a UPI or CXL link). Occupancy per request is
//!   `bytes / bandwidth`; latency is added by the caller so that the same
//!   pipe can be shared by requestors with different distances.
//! * [`SlidingWindow`] — a capacity window (e.g. "at most N descriptors in
//!   flight in a work queue", "at most QD outstanding jobs").

use crate::time::{transfer_time_mgbps, SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::VecDeque;

/// The interval during which a reservation holds its resource.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Interval {
    /// When service began (>= the requested ready time).
    pub start: SimTime,
    /// When the resource becomes free again.
    pub end: SimTime,
}

impl Interval {
    /// Length of the interval.
    pub fn duration(&self) -> SimDuration {
        self.end.duration_since(self.start)
    }
}

/// A single-server FIFO resource.
///
/// Requests are served in the order [`reserve`](Timeline::reserve) is called;
/// the caller is responsible for calling it in non-decreasing *logical*
/// order (the natural case when one producer drives the resource).
///
/// ```
/// use dsa_sim::time::{SimTime, SimDuration};
/// use dsa_sim::timeline::Timeline;
/// let mut t = Timeline::new();
/// let a = t.reserve(SimTime::from_ns(10), SimDuration::from_ns(5));
/// assert_eq!(a.start, SimTime::from_ns(10));
/// let b = t.reserve(SimTime::ZERO, SimDuration::from_ns(5));
/// // b was ready earlier but arrived second: it queues behind a.
/// assert_eq!(b.start, SimTime::from_ns(15));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    free_at: SimTime,
    busy: SimDuration,
}

impl Timeline {
    /// Creates an idle timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserves the resource for `dur` starting no earlier than `ready`.
    pub fn reserve(&mut self, ready: SimTime, dur: SimDuration) -> Interval {
        let start = ready.max(self.free_at);
        let end = start + dur;
        self.free_at = end;
        self.busy += dur;
        Interval { start, end }
    }

    /// The earliest instant a new reservation could begin service.
    pub fn next_free(&self) -> SimTime {
        self.free_at
    }

    /// Total time the resource has been held.
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Fraction of `[0, horizon]` during which the resource was held.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            return 0.0;
        }
        (self.busy.as_ps() as f64 / horizon.as_ps() as f64).min(1.0)
    }
}

/// `k` identical servers fed from one FIFO queue.
///
/// Models the engine pool of a DSA group: a descriptor at the head of a work
/// queue is dispatched to *any* free engine.
#[derive(Clone, Debug)]
pub struct MultiServer {
    free_at: BinaryHeap<Reverse<SimTime>>,
    servers: usize,
    busy: SimDuration,
}

impl MultiServer {
    /// Creates a pool of `servers` idle servers.
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0`.
    pub fn new(servers: usize) -> Self {
        assert!(servers > 0, "a server pool needs at least one server");
        let mut free_at = BinaryHeap::with_capacity(servers);
        for _ in 0..servers {
            free_at.push(Reverse(SimTime::ZERO));
        }
        Self { free_at, servers, busy: SimDuration::ZERO }
    }

    /// Number of servers in the pool.
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// Reserves *one* server for `dur`, starting no earlier than `ready`.
    pub fn reserve(&mut self, ready: SimTime, dur: SimDuration) -> Interval {
        // dsa-lint: allow(unwrap, constructors require servers >= 1, so the heap is never empty)
        let Reverse(earliest) = self.free_at.pop().expect("pool is never empty");
        let start = ready.max(earliest);
        let end = start + dur;
        self.free_at.push(Reverse(end));
        self.busy += dur;
        Interval { start, end }
    }

    /// The earliest instant any server could begin a new reservation.
    pub fn next_free(&self) -> SimTime {
        self.free_at.peek().map(|Reverse(t)| *t).unwrap_or(SimTime::ZERO)
    }

    /// Total busy time across all servers.
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }
}

/// A bandwidth-shaped pipe.
///
/// Each request occupies the pipe for `bytes / bandwidth`; concurrent
/// requestors therefore share the bandwidth by interleaving (callers should
/// chunk very large transfers — the device models do, mirroring how DSA
/// streams data through its read buffers).
///
/// Unlike [`Timeline`], the pipe is **work-conserving**: a request that was
/// ready *earlier* than the pipe's current tail may be backfilled into an
/// idle gap left by a later-ready request, so interleaved read/write
/// streams from independent requesters do not serialize artificially.
///
/// Bandwidth is expressed in milli-GB/s (`mgbps`) to allow fractional rates
/// with integer arithmetic: 30 GB/s == `30_000` mGB/s.
#[derive(Clone, Debug)]
pub struct BwResource {
    mgbps: u64,
    free_at: SimTime,
    busy: SimDuration,
    bytes_served: u64,
    gaps: VecDeque<(SimTime, SimTime)>,
}

/// Most idle gaps remembered for backfilling.
const MAX_GAPS: usize = 4096;

impl BwResource {
    /// Creates a pipe with the given bandwidth in milli-GB/s.
    ///
    /// # Panics
    ///
    /// Panics if `mgbps == 0`.
    pub fn new(mgbps: u64) -> Self {
        assert!(mgbps > 0, "bandwidth must be positive");
        Self {
            mgbps,
            free_at: SimTime::ZERO,
            busy: SimDuration::ZERO,
            bytes_served: 0,
            gaps: VecDeque::new(),
        }
    }

    /// The configured bandwidth in milli-GB/s.
    pub fn mgbps(&self) -> u64 {
        self.mgbps
    }

    /// Reserves pipe occupancy for `bytes`, ready at `ready`.
    pub fn transfer(&mut self, ready: SimTime, bytes: u64) -> Interval {
        self.bytes_served += bytes;
        let dur = transfer_time_mgbps(bytes, self.mgbps);
        self.busy += dur;
        // Backfill: fit into the earliest idle gap that can hold the whole
        // transfer at or after `ready`.
        for i in 0..self.gaps.len() {
            let (gs, ge) = self.gaps[i];
            let start = gs.max(ready);
            if start + dur <= ge {
                // Consume the used part, keeping remainders as gaps.
                self.gaps.remove(i);
                if start > gs {
                    self.gaps.insert(i, (gs, start));
                }
                if start + dur < ge {
                    let at = if start > gs { i + 1 } else { i };
                    self.gaps.insert(at, (start + dur, ge));
                }
                return Interval { start, end: start + dur };
            }
        }
        let start = ready.max(self.free_at);
        if start > self.free_at {
            self.gaps.push_back((self.free_at, start));
            while self.gaps.len() > MAX_GAPS {
                self.gaps.pop_front();
            }
        }
        self.free_at = start + dur;
        Interval { start, end: self.free_at }
    }

    /// The earliest instant a new transfer could begin at the tail
    /// (backfilling may still place work earlier).
    pub fn next_free(&self) -> SimTime {
        self.free_at
    }

    /// Total bytes moved through the pipe.
    pub fn bytes_served(&self) -> u64 {
        self.bytes_served
    }

    /// Fraction of `[0, horizon]` during which the pipe was occupied.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            return 0.0;
        }
        (self.busy.as_ps() as f64 / horizon.as_ps() as f64).min(1.0)
    }
}

/// A FIFO capacity window: at most `capacity` items in flight.
///
/// `acquire(ready)` returns the instant a slot is actually available (the
/// later of `ready` and the release of the oldest of the last `capacity`
/// holders); the caller then reports when the item will `release` its slot.
///
/// Models finite work-queue storage and software queue depths.
#[derive(Clone, Debug)]
pub struct SlidingWindow {
    releases: VecDeque<SimTime>,
    capacity: usize,
    max_in_flight: usize,
}

impl SlidingWindow {
    /// Creates a window admitting at most `capacity` concurrent holders.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        Self { releases: VecDeque::with_capacity(capacity), capacity, max_in_flight: 0 }
    }

    /// The window capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// When a slot would be available for a request ready at `ready`,
    /// without acquiring it (ENQCMD-style full/retry probing).
    pub fn available_at(&self, ready: SimTime) -> SimTime {
        if self.releases.len() < self.capacity {
            return ready;
        }
        match self.releases.front() {
            Some(&gate) => ready.max(gate),
            None => ready,
        }
    }

    /// Number of slots currently tracked as held (monotone FIFO view).
    pub fn in_flight(&self) -> usize {
        self.releases.len()
    }

    /// Number of tracked holders whose release lies after `now` — the true
    /// occupancy at `now` (unlike [`in_flight`](SlidingWindow::in_flight),
    /// which never shrinks below the high-water FIFO view).
    pub fn pending_at(&self, now: SimTime) -> usize {
        self.releases.iter().filter(|&&t| t > now).count()
    }

    /// Returns the earliest instant >= `ready` at which a slot is free.
    ///
    /// Must be paired with exactly one later call to
    /// [`release`](SlidingWindow::release).
    pub fn acquire(&mut self, ready: SimTime) -> SimTime {
        if self.releases.len() < self.capacity {
            self.max_in_flight = self.max_in_flight.max(self.releases.len() + 1);
            return ready;
        }
        // The oldest outstanding holder gates admission (FIFO credit return).
        match self.releases.front() {
            Some(&gate) => ready.max(gate),
            None => ready,
        }
    }

    /// Records that the item admitted by the matching `acquire` releases its
    /// slot at `at`.
    pub fn release(&mut self, at: SimTime) {
        if self.releases.len() == self.capacity {
            self.releases.pop_front();
        }
        // Keep the queue sorted by insertion order; FIFO semantics assume the
        // caller acquires/releases in submission order, which all device
        // models in this workspace do.
        self.releases.push_back(at);
        self.max_in_flight = self.max_in_flight.max(self.releases.len());
    }

    /// Highest concurrency observed so far.
    pub fn max_in_flight(&self) -> usize {
        self.max_in_flight
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{SimDuration, SimTime};

    fn ns(x: u64) -> SimTime {
        SimTime::from_ns(x)
    }
    fn dns(x: u64) -> SimDuration {
        SimDuration::from_ns(x)
    }

    #[test]
    fn timeline_queues_back_to_back() {
        let mut t = Timeline::new();
        let a = t.reserve(ns(0), dns(10));
        let b = t.reserve(ns(0), dns(10));
        let c = t.reserve(ns(50), dns(10));
        assert_eq!((a.start, a.end), (ns(0), ns(10)));
        assert_eq!((b.start, b.end), (ns(10), ns(20)));
        // idle gap honoured
        assert_eq!((c.start, c.end), (ns(50), ns(60)));
        assert_eq!(t.busy_time(), dns(30));
        assert!((t.utilization(ns(60)) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn multiserver_uses_free_servers() {
        let mut m = MultiServer::new(2);
        let a = m.reserve(ns(0), dns(100));
        let b = m.reserve(ns(0), dns(100));
        let c = m.reserve(ns(0), dns(100));
        assert_eq!(a.start, ns(0));
        assert_eq!(b.start, ns(0)); // second server
        assert_eq!(c.start, ns(100)); // queues behind the earliest finisher
        assert_eq!(m.next_free(), ns(100));
        assert_eq!(m.servers(), 2);
    }

    #[test]
    fn multiserver_matches_single_when_k_is_one() {
        let mut m = MultiServer::new(1);
        let mut t = Timeline::new();
        for i in 0..10u64 {
            let a = m.reserve(ns(i * 3), dns(7));
            let b = t.reserve(ns(i * 3), dns(7));
            assert_eq!(a, b);
        }
    }

    #[test]
    fn bw_resource_rate_limits() {
        // 10 GB/s pipe: 10 bytes per ns.
        let mut p = BwResource::new(10_000);
        let a = p.transfer(ns(0), 1000);
        assert_eq!(a.end, ns(100));
        let b = p.transfer(ns(0), 1000);
        assert_eq!(b.end, ns(200));
        assert_eq!(p.bytes_served(), 2000);
        // aggregate rate over the busy period == configured bandwidth
        assert!((p.utilization(ns(200)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sliding_window_admits_up_to_capacity() {
        let mut w = SlidingWindow::new(2);
        // two immediate admissions
        assert_eq!(w.acquire(ns(0)), ns(0));
        w.release(ns(100));
        assert_eq!(w.acquire(ns(0)), ns(0));
        w.release(ns(150));
        // third must wait for the first release
        assert_eq!(w.acquire(ns(0)), ns(100));
        w.release(ns(300));
        // fourth waits for the second release
        assert_eq!(w.acquire(ns(0)), ns(150));
        w.release(ns(320));
        assert_eq!(w.max_in_flight(), 2);
    }

    #[test]
    fn sliding_window_depth_one_serializes() {
        let mut w = SlidingWindow::new(1);
        let s1 = w.acquire(ns(0));
        w.release(ns(10));
        let s2 = w.acquire(ns(5));
        w.release(ns(25));
        let s3 = w.acquire(ns(6));
        w.release(ns(40));
        assert_eq!((s1, s2, s3), (ns(0), ns(10), ns(25)));
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_pool_panics() {
        let _ = MultiServer::new(0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_window_panics() {
        let _ = SlidingWindow::new(0);
    }

    #[test]
    fn interval_duration() {
        let i = Interval { start: ns(5), end: ns(9) };
        assert_eq!(i.duration(), dns(4));
    }
}

#[cfg(test)]
mod backfill_tests {
    use super::*;
    use crate::time::SimTime;

    fn ns(x: u64) -> SimTime {
        SimTime::from_ns(x)
    }

    #[test]
    fn backfill_uses_idle_gaps() {
        // 1 GB/s: 100 bytes take 100 ns.
        let mut p = BwResource::new(1_000);
        let a = p.transfer(ns(0), 100); // 0..100
        let b = p.transfer(ns(500), 100); // 500..600, gap 100..500
        let c = p.transfer(ns(50), 100); // backfills into the gap at 100
        assert_eq!((a.start, a.end), (ns(0), ns(100)));
        assert_eq!((b.start, b.end), (ns(500), ns(600)));
        assert_eq!((c.start, c.end), (ns(100), ns(200)));
        // Another backfill lands after c within the same gap.
        let d = p.transfer(ns(0), 100);
        assert_eq!((d.start, d.end), (ns(200), ns(300)));
    }

    #[test]
    fn backfill_never_starts_before_ready() {
        let mut p = BwResource::new(1_000);
        p.transfer(ns(0), 100);
        p.transfer(ns(1000), 100); // gap 100..1000
        let x = p.transfer(ns(400), 100);
        assert_eq!(x.start, ns(400));
    }

    #[test]
    fn capacity_is_conserved_under_interleaving() {
        // Interleaved early/late-ready requests must still aggregate to
        // the configured bandwidth, not half of it.
        let mut p = BwResource::new(1_000); // 1 byte/ns
        let mut max_end = SimTime::ZERO;
        for i in 0..100u64 {
            let r = p.transfer(ns(i * 10), 10);
            let w = p.transfer(ns(i * 10 + 200), 10); // writes lag reads
            max_end = max_end.max(r.end).max(w.end);
        }
        // 2000 bytes at 1 byte/ns from t=0 with last ready at ~1200:
        // must finish well before a strictly serial 100*(10+10+idle) chain.
        assert!(max_end <= ns(2300), "got {max_end:?}");
        assert_eq!(p.bytes_served(), 2000);
    }
}
