//! Event schedulers for the discrete-event [`engine`](crate::engine).
//!
//! The engine's hot loop is `pop the earliest event, run its handler, push
//! the events it produced`. This module isolates that priority queue behind
//! the [`Scheduler`] trait so implementations can be swapped — and, more
//! importantly, *diffed*: the determinism tests run the same workload on
//! two schedulers and assert bit-identical event streams.
//!
//! Schedulers move [`EventKey`]s — `(time, seq, slot)` triples 20 bytes
//! wide — while payloads stay put in the engine's [`EventStore`]. That
//! split is what makes the queue fast: ordering work touches dense key
//! arrays, payloads are read exactly once at delivery, and the store can
//! prefetch them because the scheduler knows its drain order.
//!
//! Two implementations ship:
//!
//! * [`HeapScheduler`] — the reference `BinaryHeap` ordered by
//!   `(time, seq)`. Simple, `O(log n)` per operation, and the behavioural
//!   baseline every other scheduler must match exactly.
//! * [`CalendarScheduler`] — a ladder-style calendar queue: a ring of
//!   coarse time buckets covering the near future, each split on cursor
//!   arrival into one exactly-sorted run via an in-cache counting sort,
//!   plus a sorted overflow heap for everything beyond (or behind) the
//!   ring's horizon. Pushes append to one of a few hundred hot bucket
//!   tails, pops walk a sorted run linearly while prefetching payload
//!   slots ahead of the cursor — `O(1)` amortized per event, and no
//!   allocation at all once the bucket arenas reach their high-water size.
//!
//! Both order events by ascending `(time, seq)`: the sequence number is
//! assigned by the engine in send order, so simultaneous events pop FIFO
//! and every run is deterministic.

use crate::store::EventStore;
use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One queued event's ordering key: delivery time, engine-assigned sequence
/// number (the FIFO tie-break), and the payload's [`EventStore`] slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EventKey {
    /// Delivery time.
    pub time: SimTime,
    /// Engine-assigned sequence number; unique, monotone in send order.
    pub seq: u64,
    /// Payload slot in the engine's [`EventStore`].
    pub slot: u32,
}

/// A pending-event queue ordered by ascending `(time, seq)`.
///
/// Implementations must be exact: `pop_before` returns keys in strict
/// `(time, seq)` order, and an event with `time <= deadline` is eligible
/// while one past the deadline stays queued untouched. The `store`
/// reference exists for payload prefetching; schedulers must not release
/// slots themselves.
pub trait Scheduler<M> {
    /// Enqueues one event key. `seq` values are unique and increase with
    /// every call, but `time` values arrive in any order `>=` the last pop.
    fn push(&mut self, key: EventKey, store: &EventStore<M>);

    /// Removes and returns the earliest key if its time is `<= deadline`;
    /// returns `None` (leaving the queue intact) otherwise.
    fn pop_before(&mut self, deadline: SimTime, store: &EventStore<M>) -> Option<EventKey>;

    /// Number of queued events.
    fn len(&self) -> usize;

    /// True when no events are queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Short label for reports (`"heap"`, `"calendar"`).
    fn name(&self) -> &'static str;
}

// ---------------------------------------------------------------- heap

/// The reference scheduler: a binary heap ordered by `(time, seq)`.
pub struct HeapScheduler {
    heap: BinaryHeap<Reverse<(u64, u64, u32)>>,
}

impl HeapScheduler {
    /// An empty heap scheduler.
    pub fn new() -> HeapScheduler {
        HeapScheduler { heap: BinaryHeap::new() }
    }
}

impl Default for HeapScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> Scheduler<M> for HeapScheduler {
    fn push(&mut self, key: EventKey, _store: &EventStore<M>) {
        self.heap.push(Reverse((key.time.as_ps(), key.seq, key.slot)));
    }

    fn pop_before(&mut self, deadline: SimTime, _store: &EventStore<M>) -> Option<EventKey> {
        if self.heap.peek().is_some_and(|&Reverse((t, _, _))| t <= deadline.as_ps()) {
            self.heap.pop().map(|Reverse((t, seq, slot))| EventKey {
                time: SimTime::from_ps(t),
                seq,
                slot,
            })
        } else {
            None
        }
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn name(&self) -> &'static str {
        "heap"
    }
}

// ------------------------------------------------------------ calendar

/// Ring-bucket count (power of two).
const NBUCKETS: usize = 1 << 10;
/// log2 of the coarse bucket width in picoseconds: 2^15 ps ≈ 32.8 ns per
/// bucket, so the ring covers ≈ 33.6 µs of near future — wider than the
/// event horizons of the device, fabric, and service models in this
/// workspace. Chosen by sweeping geometries on the `simperf` workloads:
/// coarse buckets keep the push fan-out down to ~1k hot tail lines, and the
/// split (below) restores exact order one bucket at a time.
const WIDTH_SHIFT: u32 = 15;
/// Buckets at or below this population skip the counting sort and go
/// straight to insertion sort when split.
const RADIX_MIN: usize = 25;

/// One ring entry. 24 bytes: the full `(time, seq)` order key plus the
/// payload slot, so splits and merges never have to chase into the store.
#[derive(Clone, Copy)]
struct Entry {
    t: u64,
    seq: u64,
    slot: u32,
}

impl Entry {
    #[inline]
    fn key(&self) -> (u64, u64) {
        (self.t, self.seq)
    }
}

/// A ladder-style calendar queue: coarse ring + split runs + overflow.
///
/// Events within the ring window (`NBUCKETS` buckets of `2^WIDTH_SHIFT` ps
/// each, starting at the cursor) append unsorted to their bucket's tail.
/// When the cursor reaches a bucket it is *split*: an in-cache counting
/// sort on the next 8 time bits groups the entries, a near-sorted insertion
/// pass polishes the run into exact `(time, seq)` order, and draining
/// becomes a linear walk that prefetches payload slots ahead of the cursor.
/// Pushes that land in the bucket currently being drained go to a small
/// sorted side stack merged on the fly; events beyond (or, after a bounded
/// run walked the cursor forward, behind) the window go to the overflow
/// heap, whose top is compared at every pop so ordering stays exact no
/// matter where an event landed. All arenas — bucket tails, the split run,
/// the side stack, the overflow — are reused, so steady-state scheduling
/// performs no allocation.
pub struct CalendarScheduler {
    /// Coarse buckets: unsorted append-only tails, indexed by
    /// `(time_ps >> WIDTH_SHIFT) & (NBUCKETS - 1)`.
    rung: Vec<Vec<Entry>>,
    /// One bit per bucket: set while the bucket holds entries. Finding the
    /// next live bucket is a word scan instead of a bucket walk.
    occ: Vec<u64>,
    /// Absolute bucket number (`time_ps >> WIDTH_SHIFT`) of the cursor; the
    /// ring window is `[cur, cur + NBUCKETS)`.
    cur: u64,
    /// Absolute bucket number currently split into `flat`; `u64::MAX`
    /// before the first split. Pushes landing here go to `extra`.
    split_ab: u64,
    /// Entries currently stored in ring buckets (excludes `flat`/`extra`).
    rung_len: usize,
    /// The split-out, exactly sorted run of the current bucket.
    flat: Vec<Entry>,
    /// Drain cursor into `flat`.
    fi: usize,
    /// Same-bucket late arrivals, kept reverse-sorted by `(time, seq)` so
    /// the next candidate pops from the back in O(1).
    extra: Vec<Entry>,
    /// Counting-sort workspace (256 sub-buckets per split).
    counts: Vec<u32>,
    scratch: Vec<Entry>,
    /// Events outside the ring window, ordered by `(time ps, seq)`.
    overflow: BinaryHeap<Reverse<(u64, u64, u32)>>,
    len: usize,
}

impl CalendarScheduler {
    /// An empty calendar scheduler.
    pub fn new() -> CalendarScheduler {
        CalendarScheduler {
            // dsa-lint: allow(hot-alloc, ring arenas built once; buckets reuse capacity forever)
            rung: (0..NBUCKETS).map(|_| Vec::new()).collect(),
            occ: vec![0; NBUCKETS / 64], // dsa-lint: allow(hot-alloc, built once per scheduler)
            cur: 0,
            split_ab: u64::MAX,
            rung_len: 0,
            flat: Vec::new(), // dsa-lint: allow(hot-alloc, split-run arena built once, reused)
            fi: 0,
            extra: Vec::new(), // dsa-lint: allow(hot-alloc, side-stack arena built once, reused)
            counts: vec![0; 256], // dsa-lint: allow(hot-alloc, counting-sort workspace built once)
            scratch: Vec::new(), // dsa-lint: allow(hot-alloc, counting-sort arena built once)
            overflow: BinaryHeap::new(),
            len: 0,
        }
    }

    #[inline]
    fn rung_append(&mut self, e: Entry) {
        let b = ((e.t >> WIDTH_SHIFT) as usize) & (NBUCKETS - 1);
        let v = &mut self.rung[b];
        if v.is_empty() {
            self.occ[b >> 6] |= 1 << (b & 63);
        }
        v.push(e);
        self.rung_len += 1;
    }

    /// First live bucket at or after `from`, or `None` when the ring is
    /// empty. Sound because every ring entry's absolute bucket is within
    /// `[cur, cur + NBUCKETS)`.
    #[inline]
    fn next_live(&self, from: u64) -> Option<u64> {
        if self.rung_len == 0 {
            return None;
        }
        let start = (from as usize) & (NBUCKETS - 1);
        let mut w = start >> 6;
        let mut word = self.occ[w] & (!0u64 << (start & 63));
        loop {
            if word != 0 {
                let bit = word.trailing_zeros() as usize;
                let b = (w << 6) | bit;
                let dist = b.wrapping_sub(start) & (NBUCKETS - 1);
                return Some(from + dist as u64);
            }
            w = (w + 1) & (NBUCKETS / 64 - 1);
            word = self.occ[w];
        }
    }

    /// Splits bucket `ab` into the exactly sorted `flat` run.
    fn split<M>(&mut self, ab: u64, store: &EventStore<M>) {
        let b = (ab as usize) & (NBUCKETS - 1);
        self.split_ab = ab;
        let v = &mut self.rung[b];
        self.rung_len -= v.len();
        self.occ[b >> 6] &= !(1 << (b & 63));
        let n = v.len();
        self.fi = 0;
        self.flat.clear();
        if n <= RADIX_MIN {
            self.flat.append(v);
        } else {
            // Counting sort on the 8 time bits below the bucket width
            // groups entries into near-sorted order; the scatter is stable,
            // so equal sub-keys keep their (seq-ordered) append order.
            self.scratch.clear();
            self.scratch.append(v);
            let shift = WIDTH_SHIFT.saturating_sub(8);
            self.counts.fill(0);
            for e in &self.scratch {
                self.counts[((e.t >> shift) & 255) as usize] += 1;
            }
            let mut sum = 0u32;
            for c in self.counts.iter_mut() {
                let x = *c;
                *c = sum;
                sum += x;
            }
            self.flat.resize(n, Entry { t: 0, seq: 0, slot: 0 });
            for e in &self.scratch {
                let k = ((e.t >> shift) & 255) as usize;
                self.flat[self.counts[k] as usize] = *e;
                self.counts[k] += 1;
            }
        }
        // Polish the near-sorted run into exact (time, seq) order.
        for i in 1..self.flat.len() {
            let e = self.flat[i];
            let mut j = i;
            while j > 0 && self.flat[j - 1].key() > e.key() {
                self.flat[j] = self.flat[j - 1];
                j -= 1;
            }
            self.flat[j] = e;
        }
        for e in self.flat.iter().take(6) {
            store.prefetch(e.slot);
        }
    }

    /// Pulls overflow events that fit the ring window back into it; when
    /// the ring is empty, first re-bases the window at the overflow
    /// minimum. Called at every cursor advance, so during a single
    /// bucket's drain the overflow top is never inside the window.
    fn migrate_overflow(&mut self) {
        while let Some(&Reverse((t, seq, slot))) = self.overflow.peek() {
            let ab = t >> WIDTH_SHIFT;
            if self.rung_len == 0 && self.flat.len() == self.fi && self.extra.is_empty() {
                // Nothing lives in the ring: jump the window to the
                // overflow minimum instead of walking to it.
                self.cur = self.cur.max(ab.min(self.cur.wrapping_add(u64::MAX / 2)));
                if ab >= self.cur + NBUCKETS as u64 || ab < self.cur {
                    self.cur = ab;
                }
            }
            if ab.wrapping_sub(self.cur) >= NBUCKETS as u64 {
                break;
            }
            self.overflow.pop();
            self.rung_append(Entry { t, seq, slot });
        }
    }

    /// The next `(time, seq)`-minimal candidate among the current split
    /// run and side stack. Advances the cursor (splitting buckets) until
    /// one exists or the ring and overflow are exhausted.
    fn current_candidate<M>(&mut self, store: &EventStore<M>) -> Option<(Entry, Source)> {
        loop {
            let f = self.flat.get(self.fi).copied();
            let x = self.extra.last().copied();
            match (f, x) {
                (Some(fe), Some(xe)) => {
                    return Some(if fe.key() <= xe.key() {
                        (fe, Source::Flat)
                    } else {
                        (xe, Source::Extra)
                    });
                }
                (Some(fe), None) => return Some((fe, Source::Flat)),
                (None, Some(xe)) => return Some((xe, Source::Extra)),
                (None, None) => {
                    self.migrate_overflow();
                    match self.next_live(self.cur) {
                        Some(ab) => {
                            self.cur = ab;
                            self.split(ab, store);
                        }
                        None => return None,
                    }
                }
            }
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Source {
    Flat,
    Extra,
}

impl Default for CalendarScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> Scheduler<M> for CalendarScheduler {
    fn push(&mut self, key: EventKey, _store: &EventStore<M>) {
        let t = key.time.as_ps();
        let e = Entry { t, seq: key.seq, slot: key.slot };
        let ab = t >> WIDTH_SHIFT;
        if self.len == 0 {
            // Empty queue: re-base the ring window wherever this event is.
            self.cur = ab;
            if self.split_ab != ab {
                self.split_ab = u64::MAX;
            }
        }
        self.len += 1;
        if ab == self.split_ab {
            // The bucket is mid-drain; keep the side stack reverse-sorted
            // so candidates pop from the back. Arrivals here are at or
            // after `now`, which sorts at or near the back — the scan is
            // a handful of compares.
            let pos = self.extra.iter().rposition(|x| x.key() > e.key());
            match pos {
                Some(p) => self.extra.insert(p + 1, e),
                None => self.extra.insert(0, e),
            }
        } else if ab.wrapping_sub(self.cur) < NBUCKETS as u64 {
            self.rung_append(e);
        } else {
            // Beyond the window — or behind the cursor after a bounded
            // run walked it forward. Both sides stay exact because every
            // pop compares against the overflow top.
            self.overflow.push(Reverse((t, key.seq, key.slot)));
        }
    }

    fn pop_before(&mut self, deadline: SimTime, store: &EventStore<M>) -> Option<EventKey> {
        if self.len == 0 {
            return None;
        }
        let cand = self.current_candidate(store);
        // The overflow top can precede the ring candidate (behind-cursor
        // pushes); compare before committing.
        let over = self.overflow.peek().map(|&Reverse(k)| k);
        let from_over = match (cand, over) {
            (Some((c, _)), Some((t, seq, _))) => (t, seq) < c.key(),
            (None, Some(_)) => true,
            (Some(_), None) => false,
            (None, None) => return None,
        };
        if from_over {
            let &Reverse((t, seq, slot)) = self.overflow.peek()?;
            if t > deadline.as_ps() {
                return None;
            }
            self.overflow.pop();
            self.len -= 1;
            return Some(EventKey { time: SimTime::from_ps(t), seq, slot });
        }
        let (e, src) = cand?;
        if e.t > deadline.as_ps() {
            return None;
        }
        match src {
            Source::Flat => {
                self.fi += 1;
                if let Some(n) = self.flat.get(self.fi + 5) {
                    store.prefetch(n.slot);
                }
                if self.fi == self.flat.len() {
                    self.flat.clear();
                    self.fi = 0;
                }
            }
            Source::Extra => {
                self.extra.pop();
            }
        }
        self.len -= 1;
        Some(EventKey { time: SimTime::from_ps(e.t), seq: e.seq, slot: e.slot })
    }

    fn len(&self) -> usize {
        self.len
    }

    fn name(&self) -> &'static str {
        "calendar"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ComponentId;
    use crate::rng::SplitMix64;

    struct Rig<S> {
        store: EventStore<u32>,
        sched: S,
    }

    impl<S: Scheduler<u32>> Rig<S> {
        fn new(sched: S) -> Self {
            Rig { store: EventStore::new(), sched }
        }

        fn push(&mut self, time_ps: u64, seq: u64) {
            let slot =
                self.store.alloc(SimTime::from_ps(time_ps), seq, ComponentId::from_index(0), 0);
            self.sched.push(EventKey { time: SimTime::from_ps(time_ps), seq, slot }, &self.store);
        }

        fn pop_before(&mut self, deadline: SimTime) -> Option<(u64, u64)> {
            let key = self.sched.pop_before(deadline, &self.store)?;
            assert_eq!(self.store.seq(key.slot), key.seq, "key/store seq must agree");
            self.store.release(key.slot);
            Some((key.time.as_ps(), key.seq))
        }

        fn drain(&mut self) -> Vec<(u64, u64)> {
            let mut out = Vec::new();
            while let Some(p) = self.pop_before(SimTime::MAX) {
                out.push(p);
            }
            out
        }
    }

    #[test]
    fn both_schedulers_sort_identically() {
        let mut rng = SplitMix64::new(42);
        let mut cal = Rig::new(CalendarScheduler::new());
        let mut heap = Rig::new(HeapScheduler::new());
        for seq in 0..10_000u64 {
            // Mixed scales: same-bucket clusters, ring-distance, and
            // far-overflow times.
            let t = rng.next_u64() % 100_000_000; // up to 100 µs
            cal.push(t, seq);
            heap.push(t, seq);
        }
        assert_eq!(cal.drain(), heap.drain());
    }

    #[test]
    fn fifo_among_simultaneous() {
        let mut cal = Rig::new(CalendarScheduler::new());
        for seq in 0..100u64 {
            cal.push(5_000, seq);
        }
        let order = cal.drain();
        assert!(order.windows(2).all(|w| w[0].1 < w[1].1), "same-time events pop in seq order");
    }

    #[test]
    fn deadline_boundary_exact() {
        let mut cal = Rig::new(CalendarScheduler::new());
        cal.push(1_000, 1);
        cal.push(1_001, 2);
        let deadline = SimTime::from_ps(1_000);
        assert_eq!(cal.pop_before(deadline).map(|e| e.1), Some(1), "event at deadline runs");
        assert_eq!(cal.pop_before(deadline).map(|e| e.1), None, "event past deadline stays");
        assert_eq!(Scheduler::<u32>::len(&cal.sched), 1);
        assert_eq!(cal.pop_before(SimTime::MAX).map(|e| e.1), Some(2));
        assert!(Scheduler::<u32>::is_empty(&cal.sched));
    }

    #[test]
    fn push_behind_cursor_after_bounded_run_stays_ordered() {
        let mut cal = Rig::new(CalendarScheduler::new());
        cal.push(10, 1);
        // Far beyond the ring window: lands in overflow.
        let far = (NBUCKETS as u64 + 10) << WIDTH_SHIFT;
        cal.push(far, 2);
        assert_eq!(cal.pop_before(SimTime::MAX).map(|e| e.1), Some(1));
        // A bounded pop may walk the cursor forward without popping…
        assert!(cal.pop_before(SimTime::from_ps(100)).is_none());
        // …then a push earlier than the far event (behind the cursor) must
        // still pop first.
        cal.push(200, 3);
        assert_eq!(cal.pop_before(SimTime::MAX).map(|e| e.1), Some(3));
        assert_eq!(cal.pop_before(SimTime::MAX).map(|e| e.1), Some(2));
    }

    #[test]
    fn mid_drain_pushes_interleave_exactly() {
        // Events landing in the bucket being drained (the `extra` path)
        // must interleave with the split run in exact (time, seq) order.
        let mut cal = Rig::new(CalendarScheduler::new());
        for seq in 0..40u64 {
            cal.push(seq * 7, seq);
        }
        // Start draining the first bucket…
        assert_eq!(cal.pop_before(SimTime::MAX), Some((0, 0)));
        // …then push into the same bucket, between and at existing times.
        cal.push(8, 100);
        cal.push(14, 101); // ties with seq 2's time: must pop after it
        let rest = cal.drain();
        let mut expect: Vec<(u64, u64)> = (1..40u64).map(|s| (s * 7, s)).collect();
        expect.push((8, 100));
        expect.push((14, 101));
        expect.sort_by_key(|&(t, s)| (t, s));
        assert_eq!(rest, expect);
    }

    #[test]
    fn large_bucket_splits_through_counting_sort() {
        // More than RADIX_MIN entries in one coarse bucket, pushed in
        // reverse time order, exercises the radix split path.
        let mut cal = Rig::new(CalendarScheduler::new());
        let n = 400u64;
        for i in 0..n {
            let t = (n - i) * 80; // all within one 32768 ps bucket
            cal.push(t % (1 << WIDTH_SHIFT), i);
        }
        let order = cal.drain();
        assert_eq!(order.len(), n as usize);
        assert!(order.windows(2).all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1)));
    }

    #[test]
    fn bucket_arenas_are_recycled() {
        let mut cal = Rig::new(CalendarScheduler::new());
        for round in 0..100u64 {
            for i in 0..16u64 {
                cal.push(round * 1_000 + i, round * 16 + i);
            }
            while cal.pop_before(SimTime::MAX).is_some() {}
        }
        assert_eq!(cal.store.high_water(), 16, "store stays at peak population");
    }

    #[test]
    fn sparse_far_future_rebases_instead_of_walking() {
        let mut cal = Rig::new(CalendarScheduler::new());
        // Three events a millisecond apart: each pop must re-base.
        for (i, t) in [1u64, 1_000_000_000, 2_000_000_000].iter().enumerate() {
            cal.push(*t, i as u64);
        }
        assert_eq!(
            cal.drain(),
            vec![(1, 0), (1_000_000_000, 1), (2_000_000_000, 2)],
            "re-base jumps straight to the overflow minimum"
        );
    }
}
