//! Event schedulers for the discrete-event [`engine`](crate::engine).
//!
//! The engine's hot loop is `pop the earliest event, run its handler, push
//! the events it produced`. This module isolates that priority queue behind
//! the [`Scheduler`] trait so implementations can be swapped — and, more
//! importantly, *diffed*: the determinism tests run the same workload on
//! two schedulers and assert bit-identical event streams.
//!
//! Two implementations ship:
//!
//! * [`HeapScheduler`] — the reference `BinaryHeap` ordered by
//!   `(time, seq)`. Simple, `O(log n)` per operation, and the behavioural
//!   baseline every other scheduler must match exactly.
//! * [`CalendarScheduler`] — a two-level calendar queue: a ring of
//!   fixed-width time buckets covering the near future plus a sorted
//!   overflow heap for everything beyond the ring's horizon. Events near
//!   the clock (the overwhelmingly common case in this workspace's
//!   device/fabric models) cost `O(1)` amortized per push/pop instead of
//!   `O(log n)`, and event payloads live in a pooled slab so steady-state
//!   scheduling performs no allocation at all.
//!
//! Both order events by ascending `(time, seq)`: the sequence number is
//! assigned by the engine in send order, so simultaneous events pop FIFO
//! and every run is deterministic.

use crate::engine::ComponentId;
use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One queued event: delivery time, engine-assigned sequence number (the
/// FIFO tie-break), target component, and the message itself.
#[derive(Debug)]
pub struct Event<M> {
    /// Delivery time.
    pub time: SimTime,
    /// Engine-assigned sequence number; unique, monotone in send order.
    pub seq: u64,
    /// Receiving component.
    pub target: ComponentId,
    /// The message payload.
    pub msg: M,
}

/// A pending-event queue ordered by ascending `(time, seq)`.
///
/// Implementations must be exact: `pop_before` returns events in strict
/// `(time, seq)` order, and an event with `time <= deadline` is eligible
/// while one past the deadline stays queued untouched.
pub trait Scheduler<M> {
    /// Enqueues one event. `seq` values are unique and increase with every
    /// call, but `time` values arrive in any order `>= ` the last pop.
    fn push(&mut self, ev: Event<M>);

    /// Removes and returns the earliest event if its time is `<= deadline`;
    /// returns `None` (leaving the queue intact) otherwise.
    fn pop_before(&mut self, deadline: SimTime) -> Option<Event<M>>;

    /// Number of queued events.
    fn len(&self) -> usize;

    /// True when no events are queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Short label for reports (`"heap"`, `"calendar"`).
    fn name(&self) -> &'static str;
}

// ---------------------------------------------------------------- heap

struct HeapNode<M>(Event<M>);

impl<M> PartialEq for HeapNode<M> {
    fn eq(&self, other: &Self) -> bool {
        self.0.time == other.0.time && self.0.seq == other.0.seq
    }
}
impl<M> Eq for HeapNode<M> {}
impl<M> PartialOrd for HeapNode<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for HeapNode<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.0.time, self.0.seq).cmp(&(other.0.time, other.0.seq))
    }
}

/// The reference scheduler: a binary heap ordered by `(time, seq)`.
pub struct HeapScheduler<M> {
    heap: BinaryHeap<Reverse<HeapNode<M>>>,
}

impl<M> HeapScheduler<M> {
    /// An empty heap scheduler.
    pub fn new() -> HeapScheduler<M> {
        HeapScheduler { heap: BinaryHeap::new() }
    }
}

impl<M> Default for HeapScheduler<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> Scheduler<M> for HeapScheduler<M> {
    fn push(&mut self, ev: Event<M>) {
        self.heap.push(Reverse(HeapNode(ev)));
    }

    fn pop_before(&mut self, deadline: SimTime) -> Option<Event<M>> {
        if self.heap.peek().is_some_and(|Reverse(n)| n.0.time <= deadline) {
            self.heap.pop().map(|Reverse(n)| n.0)
        } else {
            None
        }
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn name(&self) -> &'static str {
        "heap"
    }
}

// ------------------------------------------------------------ calendar

/// Ring-bucket count (power of two).
const NBUCKETS: usize = 1 << 12;
/// log2 of the bucket width in picoseconds: 2^12 ps ≈ 4.1 ns per bucket,
/// so the ring covers ≈ 16.8 µs of near future — wider than the event
/// horizons of the device, fabric, and service models in this workspace.
const WIDTH_SHIFT: u32 = 12;

/// One ring bucket: events of a single absolute window, sorted ascending
/// by `(time, seq)`; `head` is the index of the next event to pop, so a
/// drained prefix costs no memmove and the `Vec` allocation is reused
/// across window laps.
struct Bucket {
    items: Vec<(u64, u64, u32)>, // (time ps, seq, slab slot)
    head: usize,
}

impl Bucket {
    const fn new() -> Bucket {
        Bucket { items: Vec::new(), head: 0 }
    }

    fn live(&self) -> bool {
        self.head < self.items.len()
    }

    /// Inserts keeping `items[head..]` sorted; the common case (monotone
    /// seq, clustered times) appends in O(1).
    fn insert(&mut self, key: (u64, u64, u32)) {
        if self.items.last().is_none_or(|&last| (last.0, last.1) <= (key.0, key.1)) {
            self.items.push(key);
            return;
        }
        let tail = &self.items[self.head..];
        let pos = tail.partition_point(|&(t, s, _)| (t, s) < (key.0, key.1));
        self.items.insert(self.head + pos, key);
    }
}

/// A two-level calendar queue: near-future ring + sorted overflow.
///
/// Events whose time falls within the ring's current window (`NBUCKETS`
/// buckets of `2^WIDTH_SHIFT` ps each, starting at the cursor) go into
/// their bucket; later (or, after a deadline-bounded run, earlier-than-
/// cursor) events go to the overflow heap. Popping compares the ring's
/// candidate with the overflow's top, so ordering is exact regardless of
/// which side an event landed on. Payloads are pooled in a slab and
/// bucket `Vec`s are reused, so steady-state scheduling does not allocate.
pub struct CalendarScheduler<M> {
    /// Pooled payload storage; `free` lists recycled slots.
    slab: Vec<Option<(ComponentId, M)>>,
    free: Vec<u32>,
    buckets: Vec<Bucket>,
    /// Absolute bucket number (`time_ps >> WIDTH_SHIFT`) of the cursor;
    /// the ring window is `[cur, cur + NBUCKETS)`.
    cur: u64,
    /// Events currently stored in ring buckets.
    ring_len: usize,
    /// Events outside the ring window, ordered by `(time ps, seq)`.
    overflow: BinaryHeap<Reverse<(u64, u64, u32)>>,
    len: usize,
}

impl<M> CalendarScheduler<M> {
    /// An empty calendar scheduler.
    pub fn new() -> CalendarScheduler<M> {
        let mut buckets = Vec::with_capacity(NBUCKETS);
        buckets.resize_with(NBUCKETS, Bucket::new);
        CalendarScheduler {
            slab: Vec::new(),
            free: Vec::new(),
            buckets,
            cur: 0,
            ring_len: 0,
            overflow: BinaryHeap::new(),
            len: 0,
        }
    }

    fn alloc_slot(&mut self, target: ComponentId, msg: M) -> u32 {
        match self.free.pop() {
            Some(i) => {
                self.slab[i as usize] = Some((target, msg));
                i
            }
            None => {
                self.slab.push(Some((target, msg)));
                (self.slab.len() - 1) as u32
            }
        }
    }

    fn take_slot(&mut self, slot: u32) -> (ComponentId, M) {
        self.free.push(slot);
        match self.slab[slot as usize].take() {
            Some(p) => p,
            None => unreachable!("calendar slab slot {slot} popped twice"),
        }
    }

    fn ring_insert(&mut self, key: (u64, u64, u32)) {
        let ab = key.0 >> WIDTH_SHIFT;
        self.buckets[(ab as usize) & (NBUCKETS - 1)].insert(key);
        self.ring_len += 1;
    }

    /// Moves overflow events that now fit the ring window into it. Only
    /// sound when the ring guarantees hold for `self.cur` (empty ring or
    /// freshly re-based cursor).
    fn migrate_overflow(&mut self) {
        while let Some(&Reverse((t, _, _))) = self.overflow.peek() {
            let ab = t >> WIDTH_SHIFT;
            if ab < self.cur || ab >= self.cur + NBUCKETS as u64 {
                break;
            }
            if let Some(Reverse(key)) = self.overflow.pop() {
                self.ring_insert(key);
            }
        }
    }

    /// Advances the cursor to the first live bucket and returns its head
    /// key. Sound because every ring event's absolute bucket is `>= cur`
    /// (pushes behind the cursor are routed to overflow), so skipped
    /// buckets are genuinely empty.
    fn ring_candidate(&mut self) -> Option<(u64, u64, u32)> {
        if self.ring_len == 0 {
            return None;
        }
        for _ in 0..NBUCKETS {
            let b = &self.buckets[(self.cur as usize) & (NBUCKETS - 1)];
            if b.live() {
                return Some(b.items[b.head]);
            }
            self.cur += 1;
        }
        unreachable!("ring_len > 0 but no live bucket within the window");
    }
}

impl<M> Default for CalendarScheduler<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> Scheduler<M> for CalendarScheduler<M> {
    fn push(&mut self, ev: Event<M>) {
        let t = ev.time.as_ps();
        let slot = self.alloc_slot(ev.target, ev.msg);
        let ab = t >> WIDTH_SHIFT;
        if self.len == 0 {
            // Empty queue: re-base the ring window wherever this event is.
            self.cur = ab;
        }
        if ab >= self.cur && ab < self.cur + NBUCKETS as u64 {
            self.ring_insert((t, ev.seq, slot));
        } else {
            self.overflow.push(Reverse((t, ev.seq, slot)));
        }
        self.len += 1;
    }

    fn pop_before(&mut self, deadline: SimTime) -> Option<Event<M>> {
        if self.len == 0 {
            return None;
        }
        if self.ring_len == 0 {
            // Everything is in overflow: jump the window to its minimum
            // and pull the near future back into the ring.
            if let Some(&Reverse((t, _, _))) = self.overflow.peek() {
                self.cur = t >> WIDTH_SHIFT;
                self.migrate_overflow();
            }
        }
        let ring = self.ring_candidate();
        let over = self.overflow.peek().map(|&Reverse(k)| k);
        let from_ring = match (ring, over) {
            (Some(r), Some(o)) => (r.0, r.1) <= (o.0, o.1),
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => return None,
        };
        let (t, seq, slot) = (if from_ring { ring } else { over })?;
        if t > deadline.as_ps() {
            return None;
        }
        if from_ring {
            let b = &mut self.buckets[(t >> WIDTH_SHIFT) as usize & (NBUCKETS - 1)];
            b.head += 1;
            if !b.live() {
                b.items.clear();
                b.head = 0;
            }
            self.ring_len -= 1;
        } else {
            self.overflow.pop();
        }
        self.len -= 1;
        let (target, msg) = self.take_slot(slot);
        Some(Event { time: SimTime::from_ps(t), seq, target, msg })
    }

    fn len(&self) -> usize {
        self.len
    }

    fn name(&self) -> &'static str {
        "calendar"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    fn ev(time_ps: u64, seq: u64) -> Event<u32> {
        Event { time: SimTime::from_ps(time_ps), seq, target: ComponentId::from_index(0), msg: 0 }
    }

    fn drain<S: Scheduler<u32>>(s: &mut S) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some(e) = s.pop_before(SimTime::MAX) {
            out.push((e.time.as_ps(), e.seq));
        }
        out
    }

    #[test]
    fn both_schedulers_sort_identically() {
        let mut rng = SplitMix64::new(42);
        let mut cal = CalendarScheduler::new();
        let mut heap = HeapScheduler::new();
        for seq in 0..10_000u64 {
            // Mixed scales: same-bucket clusters, ring-distance, and
            // far-overflow times.
            let t = rng.next_u64() % 100_000_000; // up to 100 µs
            cal.push(ev(t, seq));
            heap.push(ev(t, seq));
        }
        assert_eq!(drain(&mut cal), drain(&mut heap));
    }

    #[test]
    fn fifo_among_simultaneous() {
        let mut cal = CalendarScheduler::new();
        for seq in 0..100u64 {
            cal.push(ev(5_000, seq));
        }
        let order = drain(&mut cal);
        assert!(order.windows(2).all(|w| w[0].1 < w[1].1), "same-time events pop in seq order");
    }

    #[test]
    fn deadline_boundary_exact() {
        let mut cal = CalendarScheduler::<u32>::new();
        cal.push(ev(1_000, 1));
        cal.push(ev(1_001, 2));
        let deadline = SimTime::from_ps(1_000);
        assert_eq!(cal.pop_before(deadline).map(|e| e.seq), Some(1), "event at deadline runs");
        assert_eq!(cal.pop_before(deadline).map(|e| e.seq), None, "event past deadline stays");
        assert_eq!(cal.len(), 1);
        assert_eq!(cal.pop_before(SimTime::MAX).map(|e| e.seq), Some(2));
        assert!(cal.is_empty());
    }

    #[test]
    fn push_behind_cursor_after_bounded_run_stays_ordered() {
        let mut cal = CalendarScheduler::<u32>::new();
        cal.push(ev(10, 1));
        // Far beyond the ring window: lands in overflow.
        let far = (NBUCKETS as u64 + 10) << WIDTH_SHIFT;
        cal.push(ev(far, 2));
        assert_eq!(cal.pop_before(SimTime::MAX).map(|e| e.seq), Some(1));
        // A bounded pop walks the cursor forward without popping…
        assert!(cal.pop_before(SimTime::from_ps(100)).is_none());
        // …then a push earlier than the far event (behind the cursor) must
        // still pop first.
        cal.push(ev(200, 3));
        assert_eq!(cal.pop_before(SimTime::MAX).map(|e| e.seq), Some(3));
        assert_eq!(cal.pop_before(SimTime::MAX).map(|e| e.seq), Some(2));
    }

    #[test]
    fn slab_slots_are_recycled() {
        let mut cal = CalendarScheduler::<u32>::new();
        for round in 0..100u64 {
            for i in 0..16u64 {
                cal.push(ev(round * 1_000 + i, round * 16 + i));
            }
            while cal.pop_before(SimTime::MAX).is_some() {}
        }
        assert!(cal.slab.len() <= 16, "slab stays at peak population: {}", cal.slab.len());
    }

    #[test]
    fn sparse_far_future_rebases_instead_of_walking() {
        let mut cal = CalendarScheduler::<u32>::new();
        // Three events a millisecond apart: each pop must re-base.
        for (i, t) in [1u64, 1_000_000_000, 2_000_000_000].iter().enumerate() {
            cal.push(ev(*t, i as u64));
        }
        assert_eq!(
            drain(&mut cal),
            vec![(1, 0), (1_000_000_000, 1), (2_000_000_000, 2)],
            "re-base jumps straight to the overflow minimum"
        );
    }
}
