//! A tiny deterministic PRNG for inner-loop simulation code.
//!
//! Workload generators (which need distributions) use the `rand` crate; the
//! simulation substrate itself keeps a dependency-free SplitMix64 so that
//! model code can draw cheap, reproducible randomness (e.g. hashed cache
//! indices, jittered service times) without generic plumbing.

/// SplitMix64: tiny, fast, and passes BigCrush when used as a stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` (Lemire's method, bias-free enough for
    /// simulation purposes).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Exponentially distributed variate with the given mean (inverse-CDF
    /// transform). Used by open-loop arrival generators: a Poisson process
    /// has exponential inter-arrival gaps.
    ///
    /// Returns values in `(0, +inf)`; `1.0 - next_f64()` avoids `ln(0)`.
    pub fn next_exp(&mut self, mean: f64) -> f64 {
        -mean * (1.0 - self.next_f64()).ln()
    }

    /// Derives an independent child generator (for per-agent streams).
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64() ^ 0xA5A5_A5A5_DEAD_BEEF)
    }

    /// Fills a byte slice with pseudorandom data.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            assert!(r.next_below(13) < 13);
        }
    }

    #[test]
    fn next_below_covers_range() {
        let mut r = SplitMix64::new(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.next_below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean was {mean}");
    }

    #[test]
    fn split_streams_are_independent_looking() {
        let mut parent = SplitMix64::new(5);
        let mut c1 = parent.split();
        let mut c2 = parent.split();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut r = SplitMix64::new(11);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        SplitMix64::new(0).next_below(0);
    }

    #[test]
    fn exp_variates_match_mean() {
        let mut r = SplitMix64::new(17);
        let mean = 250.0;
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = r.next_exp(mean);
            assert!(v > 0.0 && v.is_finite());
            sum += v;
        }
        let got = sum / n as f64;
        assert!((got - mean).abs() / mean < 0.02, "sample mean was {got}");
    }
}
