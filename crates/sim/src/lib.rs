//! # dsa-sim — deterministic simulation substrate
//!
//! The building blocks every other crate in this workspace stands on:
//!
//! * [`time`] — picosecond-resolution simulated time ([`SimTime`],
//!   [`SimDuration`]) with exact integer arithmetic, so every experiment is
//!   bit-for-bit reproducible.
//! * [`timeline`] — *resource timelines*: contended resources (a processing
//!   engine, a memory channel, the I/O fabric, a submission port) served in
//!   ready-time order. Queueing, saturation, and pipelining emerge from
//!   chained reservations instead of being hand-coded per experiment.
//! * [`engine`] — a classic discrete-event loop for scenarios where
//!   independent agents interact (co-running processes, software pipelines).
//! * [`sched`] — the engine's pending-event queues behind one [`sched::Scheduler`]
//!   trait: the reference binary heap and the fast ladder-style calendar
//!   queue (coarse near-future bucket ring, split into exactly sorted runs
//!   on cursor arrival, plus a sorted overflow heap) the engine uses by
//!   default. Schedulers move 20-byte `(time, seq, slot)` keys only.
//! * [`store`] — the pooled struct-of-arrays arena event payloads live in
//!   while scheduled; slots recycle LIFO so the steady-state event loop
//!   performs no heap allocation.
//! * [`stats`] — counters, log-linear latency histograms with exact
//!   percentiles (up to p99.999), and time-series samplers.
//! * [`rng`] — a small, seedable, splittable PRNG (SplitMix64) so inner-loop
//!   simulation code stays deterministic and dependency-free.
//!
//! # Example
//!
//! ```rust
//! use dsa_sim::time::{SimTime, SimDuration};
//! use dsa_sim::timeline::Timeline;
//!
//! // A single-server resource: requests queue in ready order.
//! let mut port = Timeline::new();
//! let a = port.reserve(SimTime::ZERO, SimDuration::from_ns(100));
//! let b = port.reserve(SimTime::ZERO, SimDuration::from_ns(100));
//! assert_eq!(a.end, SimTime::from_ns(100));
//! assert_eq!(b.start, SimTime::from_ns(100)); // queued behind `a`
//! ```

pub mod engine;
pub mod rng;
pub mod sched;
pub mod stats;
pub mod store;
pub mod time;
pub mod timeline;

pub use time::{SimDuration, SimTime};
