//! Measurement plumbing: counters, latency histograms, time series.
//!
//! The paper reports averages, throughput curves, latency percentiles up to
//! p99.999 (CacheLib), and occupancy-over-time traces (LLC occupancy). This
//! module provides the corresponding instruments.

use crate::time::{SimDuration, SimTime};
use std::fmt;

/// A monotonically increasing event/byte counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter {
    count: u64,
    sum: u64,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one event carrying `value` (bytes, cycles, …).
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Number of events recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean value, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A log-linear histogram of durations with exact min/max/mean and
/// approximate (bucketed) percentiles.
///
/// Buckets: 64 logarithmic majors (one per leading-bit position of the
/// picosecond value) × 16 linear minors, giving ≤ ~6% relative error —
/// plenty for reproducing figure shapes while staying allocation-free after
/// construction.
///
/// ```
/// use dsa_sim::stats::DurationHistogram;
/// use dsa_sim::time::SimDuration;
/// let mut h = DurationHistogram::new();
/// for i in 1..=1000u64 {
///     h.record(SimDuration::from_ns(i));
/// }
/// assert_eq!(h.count(), 1000);
/// let p50 = h.percentile(50.0).expect("non-empty").as_ns_f64();
/// assert!((p50 - 500.0).abs() < 40.0, "p50 was {p50}");
/// ```
#[derive(Clone)]
pub struct DurationHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum_ps: u128,
    min: SimDuration,
    max: SimDuration,
}

const MINORS: usize = 16;
const MAJORS: usize = 64;

impl DurationHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: vec![0; MAJORS * MINORS],
            count: 0,
            sum_ps: 0,
            min: SimDuration::from_ps(u64::MAX),
            max: SimDuration::ZERO,
        }
    }

    fn bucket_index(ps: u64) -> usize {
        if ps < MINORS as u64 {
            return ps as usize;
        }
        let major = 63 - ps.leading_zeros() as usize;
        let shift = major.saturating_sub(4);
        let minor = ((ps >> shift) & 0xF) as usize;
        major * MINORS + minor
    }

    fn bucket_value(index: usize) -> u64 {
        let major = index / MINORS;
        let minor = (index % MINORS) as u64;
        if major < 4 {
            // Small values land in buckets addressed directly by magnitude.
            return index as u64;
        }
        let shift = major - 4;
        ((1u64 << 4) | minor) << shift
    }

    /// Records one duration.
    pub fn record(&mut self, d: SimDuration) {
        let ps = d.as_ps();
        self.buckets[Self::bucket_index(ps)] += 1;
        self.count += 1;
        self.sum_ps += ps as u128;
        if d < self.min {
            self.min = d;
        }
        if d > self.max {
            self.max = d;
        }
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest sample (ZERO when empty).
    pub fn min(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            self.min
        }
    }

    /// Largest sample.
    pub fn max(&self) -> SimDuration {
        self.max
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_ps((self.sum_ps / self.count as u128) as u64)
    }

    /// The `p`-th percentile (0 < p <= 100), using bucket lower bounds.
    /// Returns `None` for an empty histogram — an empty distribution has
    /// no percentiles, and the old silent-`ZERO` sentinel let callers
    /// mistake "no samples" for "zero latency".
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 100]`.
    pub fn percentile(&self, p: f64) -> Option<SimDuration> {
        self.percentile_detail(p).map(|d| d.value)
    }

    /// Like [`percentile`](Self::percentile), but makes the estimator's
    /// resolution limit explicit: when every sample landed in a single
    /// bucket, the log-linear histogram has no resolution left and every
    /// percentile collapses to the same clamped value
    /// ([`Percentile::saturated`]).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 100]`.
    pub fn percentile_detail(&self, p: f64) -> Option<Percentile> {
        assert!(p > 0.0 && p <= 100.0, "percentile out of range: {p}");
        if self.count == 0 {
            return None;
        }
        let saturated = self.buckets.iter().filter(|&&n| n > 0).count() == 1;
        // dsa-lint: allow(float-cast, percentile rank is a count computation, not timeline math)
        let rank = ((p / 100.0) * self.count as f64).ceil() as u64;
        let value = if rank >= self.count {
            self.max
        } else {
            let mut seen = 0u64;
            let mut value = self.max;
            for (i, &n) in self.buckets.iter().enumerate() {
                seen += n;
                if seen >= rank {
                    value = SimDuration::from_ps(Self::bucket_value(i)).min(self.max).max(self.min);
                    break;
                }
            }
            value
        };
        Some(Percentile { value, saturated })
    }

    /// The distribution of samples recorded since `earlier` was snapshot
    /// from this histogram: bucketwise `self - earlier`, with count/sum
    /// recomputed from the delta buckets.
    ///
    /// `earlier` must be a past snapshot (clone) of this histogram —
    /// histograms only ever grow, so every delta bucket is non-negative;
    /// unrelated histograms give a meaningless (saturating) result. The
    /// exact per-sample min/max are not recoverable from buckets alone,
    /// so the delta's min/max are the tightest *bucket bounds* containing
    /// the window's samples (clamped into the parent's observed range) —
    /// good enough for the percentile queries windows exist to serve.
    pub fn delta_since(&self, earlier: &DurationHistogram) -> DurationHistogram {
        let mut out = DurationHistogram::new();
        for (i, (&now, &was)) in self.buckets.iter().zip(&earlier.buckets).enumerate() {
            let d = now.saturating_sub(was);
            if d == 0 {
                continue;
            }
            out.buckets[i] = d;
            out.count += d;
            out.sum_ps += (Self::bucket_value(i) as u128) * d as u128;
            let lo = SimDuration::from_ps(Self::bucket_value(i)).max(self.min);
            let hi = SimDuration::from_ps(Self::bucket_value((i + 1).min(MAJORS * MINORS - 1)))
                .min(self.max);
            if lo < out.min {
                out.min = lo;
            }
            if hi > out.max {
                out.max = hi.max(lo);
            }
        }
        out
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &DurationHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ps += other.sum_ps;
        if other.count > 0 {
            if other.min < self.min {
                self.min = other.min;
            }
            if other.max > self.max {
                self.max = other.max;
            }
        }
    }
}

impl Default for DurationHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// A percentile estimate together with its resolution caveat.
///
/// Returned by [`DurationHistogram::percentile_detail`]. `saturated`
/// replaces the old behaviour where a single-bucket histogram silently
/// reported the same clamped value for every percentile — callers that
/// care (e.g. tail-latency SLO checks) can now tell "the p999 really is
/// the p50" apart from "the histogram can't resolve the difference".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Percentile {
    /// The estimated value: the bucket's lower bound, clamped to the
    /// exact observed `[min, max]` range.
    pub value: SimDuration,
    /// True when every recorded sample landed in one bucket, so all
    /// percentiles collapse to this single value.
    pub saturated: bool,
}

impl fmt::Debug for DurationHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DurationHistogram")
            .field("count", &self.count)
            .field("mean", &self.mean())
            .field("min", &self.min())
            .field("max", &self.max())
            .finish()
    }
}

/// A `(time, value)` series sampled during a run — e.g. per-core LLC
/// occupancy over time (paper Fig. 12).
#[derive(Clone, Debug, Default)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample. Times should be non-decreasing.
    pub fn push(&mut self, t: SimTime, v: f64) {
        debug_assert!(
            self.points.last().is_none_or(|&(lt, _)| lt <= t),
            "time series must be sampled in order"
        );
        self.points.push((t, v));
    }

    /// The recorded samples.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Largest sampled value (0.0 when empty).
    pub fn max_value(&self) -> f64 {
        self.points.iter().map(|&(_, v)| v).fold(0.0, f64::max)
    }

    /// Mean of the sampled values (0.0 when empty).
    pub fn mean_value(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|&(_, v)| v).sum::<f64>() / self.points.len() as f64
    }
}

/// Jain's fairness index over a set of per-client allocations:
/// `J = (Σx)² / (n · Σx²)`.
///
/// Ranges from `1/n` (one client gets everything) to `1.0` (perfectly
/// equal). The paper's shared-vs-dedicated WQ QoS discussion (Fig. 9/10)
/// is quantified with this index in the multi-tenant service experiments.
/// Returns 1.0 for an empty or all-zero slice (a degenerate share vector
/// is trivially "fair").
pub fn jain_fairness(shares: &[f64]) -> f64 {
    if shares.is_empty() {
        return 1.0;
    }
    let sum: f64 = shares.iter().sum();
    let sum_sq: f64 = shares.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (shares.len() as f64 * sum_sq)
}

/// Accumulates throughput observations and reports GB/s.
#[derive(Clone, Copy, Debug, Default)]
pub struct Throughput {
    bytes: u64,
    elapsed: SimDuration,
}

impl Throughput {
    /// Creates a zeroed accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `bytes` moved over `elapsed`.
    pub fn record(&mut self, bytes: u64, elapsed: SimDuration) {
        self.bytes += bytes;
        self.elapsed += elapsed;
    }

    /// Total bytes recorded.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Achieved bandwidth in GB/s (bytes per nanosecond).
    pub fn gbps(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.bytes as f64 / self.elapsed.as_ns_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_tracks_mean() {
        let mut c = Counter::new();
        c.record(10);
        c.record(20);
        assert_eq!(c.count(), 2);
        assert_eq!(c.sum(), 30);
        assert!((c.mean() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_bounds_are_exact() {
        let mut h = DurationHistogram::new();
        h.record(SimDuration::from_ns(10));
        h.record(SimDuration::from_ns(90));
        h.record(SimDuration::from_ns(50));
        assert_eq!(h.min(), SimDuration::from_ns(10));
        assert_eq!(h.max(), SimDuration::from_ns(90));
        assert_eq!(h.mean(), SimDuration::from_ns(50));
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn histogram_percentiles_monotone() {
        let mut h = DurationHistogram::new();
        for i in 1..=10_000u64 {
            h.record(SimDuration::from_ns(i));
        }
        let p50 = h.percentile(50.0).unwrap();
        let p90 = h.percentile(90.0).unwrap();
        let p999 = h.percentile(99.9).unwrap();
        assert!(p50 <= p90 && p90 <= p999);
        let err = (p90.as_ns_f64() - 9000.0).abs() / 9000.0;
        assert!(err < 0.07, "p90 relative error {err}");
    }

    #[test]
    fn histogram_tail_percentile_hits_outlier() {
        let mut h = DurationHistogram::new();
        for _ in 0..99_999 {
            h.record(SimDuration::from_ns(100));
        }
        h.record(SimDuration::from_ms(5)); // one huge outlier
        let p99999 = h.percentile(99.999).unwrap();
        assert!(p99999 >= SimDuration::from_ns(100));
        let p100 = h.percentile(100.0).unwrap();
        assert_eq!(p100, SimDuration::from_ms(5).min(h.max()));
    }

    #[test]
    fn histogram_merge_combines_counts() {
        let mut a = DurationHistogram::new();
        let mut b = DurationHistogram::new();
        a.record(SimDuration::from_ns(1));
        b.record(SimDuration::from_ns(1000));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), SimDuration::from_ns(1));
        assert_eq!(a.max(), SimDuration::from_ns(1000));
    }

    #[test]
    fn delta_since_isolates_the_window() {
        let mut h = DurationHistogram::new();
        for i in 1..=1000u64 {
            h.record(SimDuration::from_ns(i));
        }
        let snap = h.clone();
        for i in 1..=500u64 {
            h.record(SimDuration::from_us(10 + i));
        }
        let win = h.delta_since(&snap);
        assert_eq!(win.count(), 500, "only post-snapshot samples in the window");
        // The window's samples all live above 10 µs; its p50 must too,
        // while the cumulative histogram's p50 stays down in the ns range.
        assert!(win.percentile(50.0).unwrap() >= SimDuration::from_us(9));
        assert!(h.percentile(50.0).unwrap() < SimDuration::from_us(2));
        // An unchanged histogram yields an empty window.
        let none = h.delta_since(&h.clone());
        assert_eq!(none.count(), 0);
        assert_eq!(none.percentile(99.0), None);
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = DurationHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), SimDuration::ZERO);
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert_eq!(h.percentile(99.0), None, "empty histograms have no percentiles");
        assert_eq!(h.percentile_detail(50.0), None);
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn percentile_zero_rejected() {
        let _ = DurationHistogram::new().percentile(0.0);
    }

    #[test]
    fn single_bucket_saturation_is_reported() {
        let mut h = DurationHistogram::new();
        for _ in 0..1000 {
            h.record(SimDuration::from_ns(100));
        }
        // Identical samples: every percentile collapses to the one value,
        // and the detail API says so instead of pretending to resolve it.
        for p in [50.0, 99.0, 99.9] {
            let d = h.percentile_detail(p).unwrap();
            assert_eq!(d.value, SimDuration::from_ns(100));
            assert!(d.saturated, "p{p} must report single-bucket saturation");
        }
    }

    #[test]
    fn multi_bucket_histogram_is_not_saturated() {
        let mut h = DurationHistogram::new();
        h.record(SimDuration::from_ns(10));
        h.record(SimDuration::from_us(10));
        let d = h.percentile_detail(99.0).unwrap();
        assert!(!d.saturated);
        assert_eq!(d.value, h.max());
    }

    #[test]
    fn percentile_boundaries_clamp_to_observed_range() {
        // Two samples whose bucket lower bounds lie OUTSIDE the observed
        // values: p50 must clamp up to min, p99.9 must clamp down to max.
        let mut h = DurationHistogram::new();
        h.record(SimDuration::from_ps(1_023)); // bucket lower bound < 1023
        h.record(SimDuration::from_ps(1_999_999));
        assert_eq!(h.percentile(50.0).unwrap(), h.min(), "p50 clamps to min at the low boundary");
        assert_eq!(h.percentile(99.9).unwrap(), h.max(), "p999 rank beyond count returns max");
        assert!(h.percentile(50.0).unwrap() >= h.min());
        assert!(h.percentile(99.9).unwrap() <= h.max());
    }

    #[test]
    fn timeseries_stats() {
        let mut ts = TimeSeries::new();
        assert!(ts.is_empty());
        ts.push(SimTime::from_ns(0), 1.0);
        ts.push(SimTime::from_ns(10), 3.0);
        assert_eq!(ts.len(), 2);
        assert!((ts.max_value() - 3.0).abs() < 1e-12);
        assert!((ts.mean_value() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn throughput_gbps() {
        let mut t = Throughput::new();
        t.record(1_000_000, SimDuration::from_us(100)); // 10 GB/s
        assert!((t.gbps() - 10.0).abs() < 1e-9);
        assert_eq!(t.bytes(), 1_000_000);
        assert_eq!(Throughput::new().gbps(), 0.0);
    }

    #[test]
    fn jain_index_brackets() {
        assert!((jain_fairness(&[1.0, 1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        // One hog among four clients → J = 1/4.
        assert!((jain_fairness(&[1.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
        // Mild skew lands strictly between the extremes.
        let j = jain_fairness(&[1.0, 0.8, 0.9, 0.7]);
        assert!(j > 0.25 && j < 1.0);
        assert_eq!(jain_fairness(&[]), 1.0);
        assert_eq!(jain_fairness(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn bucket_roundtrip_error_bounded() {
        for ps in [1u64, 15, 16, 100, 1000, 123_456, 10_000_000_000] {
            let idx = DurationHistogram::bucket_index(ps);
            let lower = DurationHistogram::bucket_value(idx);
            assert!(lower <= ps, "lower bound {lower} above sample {ps}");
            let rel = (ps - lower) as f64 / ps as f64;
            assert!(rel < 0.0625 + 1e-9, "relative error {rel} for {ps}");
        }
    }
}
