//! Steady-state allocation audit of the event engine.
//!
//! The zero-allocation hot path is a *measured* property, not a comment:
//! this binary installs a counting global allocator and asserts that once
//! the SoA event store, the scheduler rings, and the engine outbox have
//! warmed up, processing tens of thousands of further events touches the
//! heap exactly zero times — under both the calendar queue and the
//! reference heap.
//!
//! One `#[test]` only: the counter is process-global, so a second parallel
//! test would count its own allocations into ours.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use dsa_sim::engine::{Component, ComponentId, Ctx, Engine};
use dsa_sim::sched::{CalendarScheduler, HeapScheduler, Scheduler};
use dsa_sim::time::{SimDuration, SimTime};

/// Wraps the system allocator, counting every heap acquisition
/// (alloc/realloc/alloc_zeroed). Deallocations are free to happen — the
/// property under test is "no new heap memory in steady state".
struct CountingAlloc;

static HEAP_OPS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        HEAP_OPS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        HEAP_OPS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        HEAP_OPS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// The seven hop delays, in picoseconds. Their sum (1 277 952 ps) is an
/// exact multiple of the calendar's 2^15 ps bucket width, which makes every
/// chain's bucket-occupancy pattern *strictly periodic*: after each 7-hop
/// cycle a chain returns to the same time-phase within its bucket, advanced
/// by exactly 39 buckets. One full super-period (39 coprime to the 1024-
/// bucket ring → 1024 cycles ≈ 1.3 ms of sim time) therefore visits every
/// (ring bucket, occupancy) state the workload will ever produce — so a
/// warm-up longer than one super-period provably reaches every arena's
/// high-water mark, and the measurement window must not allocate. (A
/// drifting-phase delay set keeps discovering new occupancy maxima for
/// tens of millions of events; that is a property of the *workload*, not a
/// scheduler leak.) The 8 128 ps entry is below the bucket width, so some
/// hops land in the bucket currently being drained and exercise the
/// mid-drain side-stack path.
const DELAYS_PS: [u64; 7] = [8_128, 50_000, 120_000, 200_000, 300_000, 450_000, 149_824];

/// Self-perpetuating traffic: every event re-sends itself with one of a
/// bounded set of delays, so the live population is constant and the
/// calendar buckets cycle through a fixed working set.
struct Pacer;

impl Component<u64, u64> for Pacer {
    fn handle(&mut self, n: u64, ctx: &mut Ctx<'_, u64>, count: &mut u64) {
        *count += 1;
        let delay_ps = DELAYS_PS[(n % 7) as usize];
        ctx.send_self(SimDuration::from_ps(delay_ps), n + 1);
    }
}

fn audit_steady_state<Q: Scheduler<u64>>(sched: Q, label: &str) {
    let mut eng: Engine<u64, u64, Q> = Engine::with_scheduler(0, sched);
    let ids: Vec<ComponentId> = (0..8).map(|_| eng.add(Pacer)).collect();
    for (i, id) in ids.iter().enumerate() {
        for k in 0..8u64 {
            eng.post(SimTime::from_ps(i as u64 * 31 + k), *id, i as u64 * 8 + k);
        }
    }

    // Warm-up: ~1.5 super-periods, enough for every pool, ring, and outbox
    // to reach its high-water capacity (see DELAYS_PS).
    eng.run_until(SimTime::from_ps(2_000_000_000));
    let warmed = eng.events_processed();
    assert!(warmed > 20_000, "warm-up too short: {warmed} events");

    // Steady state: from here on, the hot path must not touch the heap.
    let before = HEAP_OPS.load(Ordering::SeqCst);
    eng.run_until(SimTime::from_ps(3_500_000_000));
    let after = HEAP_OPS.load(Ordering::SeqCst);

    let stepped = eng.events_processed() - warmed;
    assert!(stepped > 20_000, "measurement window too short: {stepped} events");
    assert_eq!(
        after - before,
        0,
        "{label}: {} heap allocation(s) during {stepped} steady-state engine steps",
        after - before
    );
}

#[test]
fn engine_steady_state_is_allocation_free() {
    audit_steady_state(CalendarScheduler::new(), "calendar");
    audit_steady_state(HeapScheduler::new(), "heap");
}
