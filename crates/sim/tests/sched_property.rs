//! Property tests for the event schedulers: the calendar queue must be
//! observationally identical to the reference heap — same pop order for
//! any event stream, same-timestamp FIFO stability, and exact `run_until`
//! deadline behaviour — because every figure digest in EXPERIMENTS.md
//! rides on that equivalence.

use dsa_sim::engine::{Component, ComponentId, Ctx, Engine};
use dsa_sim::rng::SplitMix64;
use dsa_sim::sched::{CalendarScheduler, EventKey, HeapScheduler, Scheduler};
use dsa_sim::store::EventStore;
use dsa_sim::time::{SimDuration, SimTime};

/// A scheduler plus the payload store backing it — the pair the engine
/// owns, reproduced here so tests can drive the queue directly.
struct Rig<S> {
    store: EventStore<u64>,
    sched: S,
}

impl<S: Scheduler<u64>> Rig<S> {
    fn new(sched: S) -> Self {
        Rig { store: EventStore::new(), sched }
    }

    fn push(&mut self, time_ps: u64, seq: u64) {
        let t = SimTime::from_ps(time_ps);
        let slot = self.store.alloc(t, seq, ComponentId::from_index(0), seq);
        self.sched.push(EventKey { time: t, seq, slot }, &self.store);
    }

    /// Pops one eligible event, returning `(time_ps, seq, payload)` the
    /// way the engine observes it (payload read out of the store slot).
    fn pop_before(&mut self, deadline: SimTime) -> Option<(u64, u64, u64)> {
        let key = self.sched.pop_before(deadline, &self.store)?;
        let (_, msg) = self.store.release(key.slot);
        Some((key.time.as_ps(), key.seq, msg))
    }

    fn len(&self) -> usize {
        self.sched.len()
    }
}

/// Replays one randomized push/pop script against both schedulers and
/// asserts identical observable behaviour. Pushes respect the engine's
/// contract: times never precede the last popped event.
fn diff_schedulers(seed: u64, ops: usize, spread_ps: u64) {
    let mut rng = SplitMix64::new(seed);
    let mut cal = Rig::new(CalendarScheduler::new());
    let mut heap = Rig::new(HeapScheduler::new());
    let mut seq = 0u64;
    let mut now = 0u64;
    for _ in 0..ops {
        let r = rng.next_u64();
        if r.is_multiple_of(4) {
            // Bounded pop: deadline a random distance ahead of `now`.
            let deadline = SimTime::from_ps(now + r % spread_ps.max(1));
            let a = cal.pop_before(deadline);
            let b = heap.pop_before(deadline);
            assert_eq!(a, b, "divergence at seed {seed}");
            if let Some((t, _, _)) = a {
                now = t;
            }
        } else {
            // Push 1-3 events; every 5th burst is simultaneous to stress
            // the FIFO tie-break.
            let burst = 1 + (r >> 8) % 3;
            let same_time = (r >> 16).is_multiple_of(5);
            let mut t = now + (r >> 32) % spread_ps.max(1);
            for _ in 0..burst {
                if !same_time {
                    t = now + rng.next_u64() % spread_ps.max(1);
                }
                seq += 1;
                cal.push(t, seq);
                heap.push(t, seq);
            }
        }
        assert_eq!(cal.len(), heap.len());
    }
    // Drain both: residue must match exactly, in order.
    loop {
        let a = cal.pop_before(SimTime::MAX);
        let b = heap.pop_before(SimTime::MAX);
        assert_eq!(a, b, "drain divergence at seed {seed}");
        if a.is_none() {
            break;
        }
    }
    assert_eq!(cal.store.live(), 0, "every scheduled slot was released");
}

#[test]
fn randomized_streams_pop_identically_near_spread() {
    // Spread smaller than one bucket: everything clusters.
    for seed in 0..8 {
        diff_schedulers(0xA11CE + seed, 4_000, 1 << 10);
    }
}

#[test]
fn randomized_streams_pop_identically_ring_spread() {
    // Spread inside the ring window (≈33.6 µs).
    for seed in 0..8 {
        diff_schedulers(0xB0B + seed, 4_000, 10_000_000);
    }
}

#[test]
fn randomized_streams_pop_identically_overflow_spread() {
    // Spread far past the ring horizon: constant overflow traffic.
    for seed in 0..8 {
        diff_schedulers(0xCAFE + seed, 4_000, 1 << 40);
    }
}

#[test]
fn same_timestamp_storm_is_fifo_stable() {
    let mut cal = Rig::new(CalendarScheduler::new());
    let mut heap = Rig::new(HeapScheduler::new());
    for seq in 1..=10_000u64 {
        cal.push(777_000, seq);
        heap.push(777_000, seq);
    }
    let mut expect = 1u64;
    while let (Some(a), Some(b)) = (cal.pop_before(SimTime::MAX), heap.pop_before(SimTime::MAX)) {
        assert_eq!(a.1, expect);
        assert_eq!(b.1, expect);
        expect += 1;
    }
    assert_eq!(expect, 10_001);
}

struct Echo;
impl Component<u32, Vec<u32>> for Echo {
    fn handle(&mut self, n: u32, _ctx: &mut Ctx<'_, u32>, log: &mut Vec<u32>) {
        log.push(n);
    }
}

/// `run_until` boundary: an event exactly at the deadline runs; one a
/// picosecond past it stays queued. Both schedulers, same behaviour.
#[test]
fn run_until_deadline_boundary_on_both_schedulers() {
    fn check<Q: Scheduler<u32>>(sched: Q) {
        let mut eng = Engine::with_scheduler(Vec::new(), sched);
        let e = eng.add(Echo);
        eng.post(SimTime::from_ps(1_000), e, 1);
        eng.post(SimTime::from_ps(1_001), e, 2);
        eng.run_until(SimTime::from_ps(1_000));
        assert_eq!(eng.shared(), &vec![1], "event at the deadline runs; one past it waits");
        eng.run();
        assert_eq!(eng.shared(), &vec![1, 2]);
        assert_eq!(eng.events_processed(), 2);
    }
    check(CalendarScheduler::new());
    check(HeapScheduler::new());
}

struct Fanout {
    peers: Vec<ComponentId>,
    rng: SplitMix64,
    left: u32,
}
impl Component<u32, Vec<(u64, u32)>> for Fanout {
    fn handle(&mut self, n: u32, ctx: &mut Ctx<'_, u32>, log: &mut Vec<(u64, u32)>) {
        log.push((ctx.now().as_ps(), n));
        if self.left == 0 {
            return;
        }
        self.left -= 1;
        let r = self.rng.next_u64();
        let target = self.peers[(r % self.peers.len() as u64) as usize];
        ctx.send(SimDuration::from_ps(r % 5_000), target, n + 1);
        if r.is_multiple_of(3) {
            ctx.send_self(SimDuration::ZERO, n + 1); // zero-delay self-chain
        }
    }
}

/// A full engine workload (random fan-out, zero-delay chains) must leave a
/// bit-identical log under either scheduler.
#[test]
fn engine_runs_identically_under_both_schedulers() {
    fn run<Q: Scheduler<u32>>(sched: Q) -> (Vec<(u64, u32)>, u64, SimTime) {
        let mut eng = Engine::with_scheduler(Vec::new(), sched);
        // Ids are assigned in registration order, so the full peer list is
        // known up front.
        let ids: Vec<ComponentId> = (0..5).map(ComponentId::from_index).collect();
        for i in 0..5u64 {
            eng.add(Fanout { peers: ids.clone(), rng: SplitMix64::new(90 + i), left: 400 });
        }
        eng.post(SimTime::ZERO, ids[0], 0);
        let end = eng.run();
        (eng.shared().clone(), eng.events_processed(), end)
    }
    let a = run(CalendarScheduler::new());
    let b = run(HeapScheduler::new());
    assert_eq!(a.0, b.0, "event logs must be bit-identical");
    assert_eq!(a.1, b.1, "events_processed must match");
    assert_eq!(a.2, b.2, "final clocks must match");
}
