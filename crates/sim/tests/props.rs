//! Property tests for the simulation substrate: conservation laws and
//! ordering invariants that must hold for arbitrary request streams.

use dsa_sim::stats::DurationHistogram;
use dsa_sim::time::{transfer_time_mgbps, SimDuration, SimTime};
use dsa_sim::timeline::{BwResource, MultiServer, SlidingWindow, Timeline};
use proptest::prelude::*;

proptest! {
    #[test]
    fn timeline_never_overlaps_and_conserves_busy(
        reqs in prop::collection::vec((0u64..10_000, 1u64..500), 1..100)
    ) {
        let mut t = Timeline::new();
        let mut last_end = SimTime::ZERO;
        let mut total = SimDuration::ZERO;
        for (ready, dur) in reqs {
            let iv = t.reserve(SimTime::from_ns(ready), SimDuration::from_ns(dur));
            // FIFO: intervals are disjoint and ordered.
            prop_assert!(iv.start >= last_end);
            prop_assert!(iv.start >= SimTime::from_ns(ready));
            prop_assert_eq!(iv.duration(), SimDuration::from_ns(dur));
            last_end = iv.end;
            total += SimDuration::from_ns(dur);
        }
        prop_assert_eq!(t.busy_time(), total);
    }

    #[test]
    fn multiserver_start_after_ready_and_k_bounded(
        k in 1usize..8,
        reqs in prop::collection::vec((0u64..5_000, 1u64..300), 1..80)
    ) {
        let mut m = MultiServer::new(k);
        let mut intervals = Vec::new();
        for (ready, dur) in &reqs {
            let iv = m.reserve(SimTime::from_ns(*ready), SimDuration::from_ns(*dur));
            prop_assert!(iv.start >= SimTime::from_ns(*ready));
            intervals.push(iv);
        }
        // At any interval start, at most k intervals are concurrently open.
        for iv in &intervals {
            let overlapping = intervals
                .iter()
                .filter(|o| o.start <= iv.start && iv.start < o.end)
                .count();
            prop_assert!(overlapping <= k, "{} concurrent on {} servers", overlapping, k);
        }
    }

    #[test]
    fn bw_resource_conserves_capacity(
        mgbps in 1_000u64..100_000,
        reqs in prop::collection::vec((0u64..100_000, 64u64..1 << 20), 1..60)
    ) {
        let mut p = BwResource::new(mgbps);
        let mut total_bytes = 0u64;
        let mut max_end = SimTime::ZERO;
        let mut min_ready = u64::MAX;
        for (ready, bytes) in &reqs {
            let iv = p.transfer(SimTime::from_ns(*ready), *bytes);
            prop_assert!(iv.start >= SimTime::from_ns(*ready), "never starts before ready");
            prop_assert_eq!(iv.duration(), transfer_time_mgbps(*bytes, mgbps));
            total_bytes += bytes;
            max_end = max_end.max(iv.end);
            min_ready = min_ready.min(*ready);
        }
        prop_assert_eq!(p.bytes_served(), total_bytes);
        // Work conservation: finishing no later than serial service after
        // the last ready time, and no earlier than perfect pipelining.
        let serial = transfer_time_mgbps(total_bytes, mgbps);
        prop_assert!(max_end <= SimTime::from_ns(100_000) + serial);
        prop_assert!(max_end >= SimTime::from_ns(min_ready) + transfer_time_mgbps(64, mgbps));
    }

    #[test]
    fn sliding_window_never_exceeds_capacity(
        cap in 1usize..16,
        items in prop::collection::vec((0u64..1_000, 1u64..500), 1..60)
    ) {
        let mut w = SlidingWindow::new(cap);
        let mut clock = SimTime::ZERO;
        for (gap, hold) in items {
            clock += SimDuration::from_ns(gap);
            let admitted = w.acquire(clock);
            prop_assert!(admitted >= clock);
            w.release(admitted + SimDuration::from_ns(hold));
        }
        prop_assert!(w.max_in_flight() <= cap);
    }

    #[test]
    fn histogram_percentiles_are_monotone_and_bounded(
        samples in prop::collection::vec(1u64..10_000_000, 1..500)
    ) {
        let mut h = DurationHistogram::new();
        for &s in &samples {
            h.record(SimDuration::from_ns(s));
        }
        let mut last = SimDuration::ZERO;
        for p in [1.0, 10.0, 50.0, 90.0, 99.0, 99.999, 100.0] {
            let v = h.percentile(p);
            prop_assert!(v >= last, "percentile must be monotone in p");
            prop_assert!(v >= h.min() && v <= h.max());
            last = v;
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        let mean = h.mean();
        prop_assert!(mean >= h.min() && mean <= h.max());
    }

    #[test]
    fn transfer_time_is_linear_in_bytes(
        bytes in 1u64..1 << 24,
        mgbps in 100u64..200_000
    ) {
        let one = transfer_time_mgbps(bytes, mgbps);
        let two = transfer_time_mgbps(bytes * 2, mgbps);
        // Within integer rounding of a factor of two.
        let diff = (two.as_ps() as i128 - 2 * one.as_ps() as i128).abs();
        prop_assert!(diff <= 2, "doubling bytes doubles time (got diff {diff})");
    }
}
