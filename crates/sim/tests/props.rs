//! Property-style tests for the simulation substrate: conservation laws
//! and ordering invariants that must hold for arbitrary request streams.
//!
//! Randomized inputs come from the in-repo deterministic [`SplitMix64`]
//! generator so the suite runs offline with no external test-harness
//! dependency; every case is reproducible from the fixed seeds below.

use dsa_sim::rng::SplitMix64;
use dsa_sim::stats::DurationHistogram;
use dsa_sim::time::{transfer_time_mgbps, SimDuration, SimTime};
use dsa_sim::timeline::{BwResource, MultiServer, SlidingWindow, Timeline};

const CASES: usize = 48;

#[test]
fn timeline_never_overlaps_and_conserves_busy() {
    let mut rng = SplitMix64::new(0x51AD_0001);
    for _ in 0..CASES {
        let reqs = 1 + rng.next_below(99) as usize;
        let mut t = Timeline::new();
        let mut last_end = SimTime::ZERO;
        let mut total = SimDuration::ZERO;
        for _ in 0..reqs {
            let ready = rng.next_below(10_000);
            let dur = 1 + rng.next_below(499);
            let iv = t.reserve(SimTime::from_ns(ready), SimDuration::from_ns(dur));
            // FIFO: intervals are disjoint and ordered.
            assert!(iv.start >= last_end);
            assert!(iv.start >= SimTime::from_ns(ready));
            assert_eq!(iv.duration(), SimDuration::from_ns(dur));
            last_end = iv.end;
            total += SimDuration::from_ns(dur);
        }
        assert_eq!(t.busy_time(), total);
    }
}

#[test]
fn multiserver_start_after_ready_and_k_bounded() {
    let mut rng = SplitMix64::new(0x51AD_0002);
    for _ in 0..CASES {
        let k = 1 + rng.next_below(7) as usize;
        let reqs = 1 + rng.next_below(79) as usize;
        let mut m = MultiServer::new(k);
        let mut intervals = Vec::new();
        for _ in 0..reqs {
            let ready = rng.next_below(5_000);
            let dur = 1 + rng.next_below(299);
            let iv = m.reserve(SimTime::from_ns(ready), SimDuration::from_ns(dur));
            assert!(iv.start >= SimTime::from_ns(ready));
            intervals.push(iv);
        }
        // At any interval start, at most k intervals are concurrently open.
        for iv in &intervals {
            let overlapping =
                intervals.iter().filter(|o| o.start <= iv.start && iv.start < o.end).count();
            assert!(overlapping <= k, "{overlapping} concurrent on {k} servers");
        }
    }
}

#[test]
fn bw_resource_conserves_capacity() {
    let mut rng = SplitMix64::new(0x51AD_0003);
    for _ in 0..CASES {
        let mgbps = 1_000 + rng.next_below(99_000);
        let reqs = 1 + rng.next_below(59) as usize;
        let mut p = BwResource::new(mgbps);
        let mut total_bytes = 0u64;
        let mut max_end = SimTime::ZERO;
        let mut min_ready = u64::MAX;
        for _ in 0..reqs {
            let ready = rng.next_below(100_000);
            let bytes = 64 + rng.next_below((1 << 20) - 64);
            let iv = p.transfer(SimTime::from_ns(ready), bytes);
            assert!(iv.start >= SimTime::from_ns(ready), "never starts before ready");
            assert_eq!(iv.duration(), transfer_time_mgbps(bytes, mgbps));
            total_bytes += bytes;
            max_end = max_end.max(iv.end);
            min_ready = min_ready.min(ready);
        }
        assert_eq!(p.bytes_served(), total_bytes);
        // Work conservation: finishing no later than serial service after
        // the last ready time, and no earlier than perfect pipelining.
        let serial = transfer_time_mgbps(total_bytes, mgbps);
        assert!(max_end <= SimTime::from_ns(100_000) + serial);
        assert!(max_end >= SimTime::from_ns(min_ready) + transfer_time_mgbps(64, mgbps));
    }
}

#[test]
fn sliding_window_never_exceeds_capacity() {
    let mut rng = SplitMix64::new(0x51AD_0004);
    for _ in 0..CASES {
        let cap = 1 + rng.next_below(15) as usize;
        let items = 1 + rng.next_below(59) as usize;
        let mut w = SlidingWindow::new(cap);
        let mut clock = SimTime::ZERO;
        for _ in 0..items {
            let gap = rng.next_below(1_000);
            let hold = 1 + rng.next_below(499);
            clock += SimDuration::from_ns(gap);
            let admitted = w.acquire(clock);
            assert!(admitted >= clock);
            w.release(admitted + SimDuration::from_ns(hold));
        }
        assert!(w.max_in_flight() <= cap);
    }
}

#[test]
fn histogram_percentiles_are_monotone_and_bounded() {
    let mut rng = SplitMix64::new(0x51AD_0005);
    for _ in 0..CASES {
        let n = 1 + rng.next_below(499) as usize;
        let mut h = DurationHistogram::new();
        for _ in 0..n {
            h.record(SimDuration::from_ns(1 + rng.next_below(9_999_999)));
        }
        let mut last = SimDuration::ZERO;
        for p in [1.0, 10.0, 50.0, 90.0, 99.0, 99.999, 100.0] {
            let v = h.percentile(p).expect("histogram is non-empty");
            assert!(v >= last, "percentile must be monotone in p");
            assert!(v >= h.min() && v <= h.max());
            last = v;
        }
        assert_eq!(h.count(), n as u64);
        let mean = h.mean();
        assert!(mean >= h.min() && mean <= h.max());
    }
}

#[test]
fn transfer_time_is_linear_in_bytes() {
    let mut rng = SplitMix64::new(0x51AD_0006);
    for _ in 0..256 {
        let bytes = 1 + rng.next_below((1 << 24) - 1);
        let mgbps = 100 + rng.next_below(199_900);
        let one = transfer_time_mgbps(bytes, mgbps);
        let two = transfer_time_mgbps(bytes * 2, mgbps);
        // Within integer rounding of a factor of two.
        let diff = (two.as_ps() as i128 - 2 * one.as_ps() as i128).abs();
        assert!(diff <= 2, "doubling bytes doubles time (got diff {diff})");
    }
}
